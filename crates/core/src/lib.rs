//! # replend-core
//!
//! **Reputation lending for virtual communities** — the primary
//! contribution of Garg, Montresor & Battiti (DIT-05-086 / ICDE
//! 2006), reproduced as a Rust library.
//!
//! A new peer enters the community with reputation **zero** and can
//! only begin consuming resources after an existing member *lends* it
//! `introAmt` of its own reputation. The introducer is later audited
//! on the newcomer's behaviour: cooperative newcomers earn the
//! introducer its stake back plus a reward; freeriders forfeit it.
//!
//! ## Crate layout
//!
//! * [`lending`] — the pure protocol arithmetic (stake, repayment,
//!   penalty, thresholds), unit-testable without a simulation;
//! * [`introduction`] — the request / wait-`T` / resolve state
//!   machine, including duplicate-introduction detection (§2's
//!   "multiple introduction requests" attack);
//! * [`messages`] — the §2 message flow (signed stake deduction,
//!   `numSM × numSM` credit fan-out, idempotent application) with
//!   crash-loss injection;
//! * [`audit`] — the per-newcomer transaction countdown and verdict;
//! * [`log`] — an optional bounded event log ("why was peer X
//!   refused?") for observability;
//! * [`peer`] — runtime peer records (profile, admission status);
//! * [`peer_table`] — the indexed peer store maintaining the
//!   population counters, mean-reputation accumulators and the member
//!   reputation histogram incrementally, so per-tick sampling is O(1)
//!   instead of O(members);
//! * [`policy`] — the [`BootstrapPolicy`](policy::BootstrapPolicy)
//!   alternatives compared in the ablations (open admission, fixed
//!   credit à la BitTorrent/Scrivener, positive-only,
//!   complaints-only);
//! * [`community`] — the façade wiring ROCQ + DHT + topology +
//!   Poisson arrivals into the paper's one-transaction-per-tick
//!   simulator;
//! * [`cluster`] — K independent communities executed by pluggable
//!   [`worker`] transports and merged from their decoded reports
//!   (byte-identical whichever transport ran them);
//! * [`worker`] — the cluster's job/report protocol: in-process
//!   execution on the rayon pool, or shared-nothing subprocess
//!   workers speaking the `replend-wire` format over stdio;
//! * [`serve`] — the online service layer: a concurrently-readable
//!   engine facade with whitelist/throttle/ban status tiers and an
//!   append-only write-ahead feedback journal for crash-consistent
//!   restart;
//! * [`stats`] — the admission ledger, population counts, and the
//!   §4.1 decision success-rate metric.
//!
//! ## Quickstart
//!
//! ```
//! use replend_core::community::{Community, CommunityBuilder};
//!
//! let mut community = CommunityBuilder::paper_defaults()
//!     .seed(42)
//!     .build();
//! community.run(5_000);
//! let stats = community.stats();
//! println!(
//!     "admitted {} cooperative / {} uncooperative peers",
//!     stats.admitted_cooperative, stats.admitted_uncooperative
//! );
//! assert!(community.population().members >= 500);
//! ```

pub mod audit;
pub mod cluster;
pub mod community;
pub mod introduction;
pub mod lending;
pub mod log;
pub mod messages;
pub mod peer;
pub mod peer_table;
pub mod policy;
pub mod serve;
pub mod stats;
pub mod worker;

pub use cluster::{CommunityCluster, CommunitySummary};
pub use community::{Community, CommunityBuilder};
pub use policy::{BootstrapPolicy, EngineKind};
pub use serve::{
    ReputationService, ServeConfig, ServeError, StatusCensus, StatusPolicy, SubjectStatus,
};
pub use worker::{
    CommunityReport, InProcessWorker, SubprocessWorker, Worker, WorkerError, WorkerJob,
};

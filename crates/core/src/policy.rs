//! Bootstrap policies and reputation-engine selection.
//!
//! §1 of the paper surveys how existing systems treat new entrants:
//! complaints-based trust admits everyone as trusted, positive-only
//! feedback freezes newcomers out, BitTorrent/Scrivener grant a small
//! unconditional credit. Reputation lending is the paper's
//! alternative. All five are implemented so the ablation bench
//! (`ablation_policies`) can compare them under identical workloads.

use replend_rocq::baselines::{BetaEngine, EwmaEngine, SimpleAverageEngine};
use replend_rocq::{ReputationEngine, RocqEngine, RocqParams};
use replend_types::SimParams;
use serde::{Deserialize, Serialize};

/// How new arrivals are admitted.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub enum BootstrapPolicy {
    /// The paper's mechanism: admission requires an introduction and
    /// a reputation loan (parameters in
    /// [`LendingParams`](replend_types::LendingParams)).
    #[default]
    ReputationLending,
    /// "No introductions required": every arrival admitted instantly
    /// with the given initial reputation — the paper's comparison
    /// baseline (§4.1 success-rate experiment).
    OpenAdmission {
        /// Starting reputation of every arrival.
        initial: f64,
    },
    /// An unconditional starter credit, as in BitTorrent's optimistic
    /// unchoke slots or Scrivener's initial credit (§1).
    FixedCredit {
        /// The unconditional credit.
        credit: f64,
    },
    /// Positive-feedback-only model: arrivals start at zero and must
    /// earn everything (§1's "frozen out" scenario).
    PositiveOnly,
    /// Complaints-based trust (Aberer–Despotovic, §1): arrivals start
    /// fully trusted and only negative feedback hurts them — the
    /// whitewashing-prone model.
    ComplaintsOnly,
}

impl BootstrapPolicy {
    /// The immediate admission reputation, or `None` when admission
    /// goes through the lending protocol.
    pub fn immediate_admission(&self) -> Option<f64> {
        match *self {
            BootstrapPolicy::ReputationLending => None,
            BootstrapPolicy::OpenAdmission { initial } => Some(initial),
            BootstrapPolicy::FixedCredit { credit } => Some(credit),
            BootstrapPolicy::PositiveOnly => Some(0.0),
            BootstrapPolicy::ComplaintsOnly => Some(1.0),
        }
    }

    /// Short name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            BootstrapPolicy::ReputationLending => "lending",
            BootstrapPolicy::OpenAdmission { .. } => "open",
            BootstrapPolicy::FixedCredit { .. } => "fixed-credit",
            BootstrapPolicy::PositiveOnly => "positive-only",
            BootstrapPolicy::ComplaintsOnly => "complaints-only",
        }
    }
}

/// Which reputation engine backs the community. Serializable so a
/// cluster job can carry the full engine spec to a worker process.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum EngineKind {
    /// The replicated ROCQ engine (the paper's).
    Rocq(RocqParams),
    /// Plain running average (ablation).
    SimpleAverage,
    /// Exponentially weighted moving average (ablation).
    Ewma {
        /// Smoothing factor in `(0, 1]`.
        alpha: f64,
    },
    /// Beta reputation (ablation).
    Beta,
}

impl EngineKind {
    /// Instantiates the engine for a simulation configuration. The
    /// infrastructure knobs (`num_sm`, `num_shards`,
    /// `parallel_batch_min`) and `seed` only affect the replicated
    /// ROCQ engine (the baselines are centralised single structures).
    pub fn build(self, sim: &SimParams, seed: u64) -> Box<dyn ReputationEngine + Send> {
        match self {
            EngineKind::Rocq(params) => Box::new(
                RocqEngine::sharded(params, sim.num_sm, sim.num_shards, seed)
                    .with_parallel_batch_min(sim.parallel_batch_min),
            ),
            EngineKind::SimpleAverage => Box::new(SimpleAverageEngine::new()),
            EngineKind::Ewma { alpha } => Box::new(EwmaEngine::new(alpha)),
            EngineKind::Beta => Box::new(BetaEngine::new()),
        }
    }
}

impl Default for EngineKind {
    fn default() -> Self {
        EngineKind::Rocq(RocqParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lending_defers_admission() {
        assert_eq!(
            BootstrapPolicy::ReputationLending.immediate_admission(),
            None
        );
    }

    #[test]
    fn immediate_policies_report_initial_values() {
        assert_eq!(
            BootstrapPolicy::OpenAdmission { initial: 0.5 }.immediate_admission(),
            Some(0.5)
        );
        assert_eq!(
            BootstrapPolicy::FixedCredit { credit: 0.1 }.immediate_admission(),
            Some(0.1)
        );
        assert_eq!(
            BootstrapPolicy::PositiveOnly.immediate_admission(),
            Some(0.0)
        );
        assert_eq!(
            BootstrapPolicy::ComplaintsOnly.immediate_admission(),
            Some(1.0)
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BootstrapPolicy::ReputationLending.name(), "lending");
        assert_eq!(BootstrapPolicy::PositiveOnly.name(), "positive-only");
        assert_eq!(BootstrapPolicy::default().name(), "lending");
    }

    #[test]
    fn engines_build() {
        let sim = SimParams::default();
        let sharded = SimParams {
            num_shards: 4,
            parallel_batch_min: 64,
            ..SimParams::default()
        };
        assert_eq!(EngineKind::default().build(&sim, 1).name(), "rocq");
        assert_eq!(EngineKind::default().build(&sharded, 1).name(), "rocq");
        assert_eq!(
            EngineKind::SimpleAverage.build(&sim, 1).name(),
            "simple-average"
        );
        assert_eq!(
            EngineKind::Ewma { alpha: 0.2 }.build(&sim, 1).name(),
            "ewma"
        );
        assert_eq!(EngineKind::Beta.build(&sim, 1).name(), "beta");
    }
}

//! Transport-agnostic cluster workers.
//!
//! The multi-community cluster's execution model is a **job / report
//! protocol**: a coordinator describes a slice of independent
//! communities as a [`WorkerJob`] (full builder spec, seed schedule
//! indices, tick count, sampling/histogram knobs) and a [`Worker`]
//! returns one [`CommunityReport`] per community. Everything a merge
//! needs — population counters, protocol stats, the O(1) reputation
//! means, histogram buckets, the sampled series — is *in the report*,
//! so the coordinator never needs shared memory with the simulation:
//!
//! * [`InProcessWorker`] runs the job on this process's rayon pool
//!   (the classic `--communities K` path);
//! * [`SubprocessWorker`] spawns a `replend worker` child per job and
//!   speaks the `replend-wire` format over its stdio pipes —
//!   shared-nothing scale-out across processes (and, with a remote
//!   launcher in place of `std::process`, across hosts).
//!
//! Reports are deterministic functions of `(job, index)`: a
//! community's report is **bit-identical** whichever worker produced
//! it, which is what makes `--workers N` output byte-identical to the
//! in-process path (pinned by the CLI integration tests and the CI
//! smoke step).
//!
//! ## The stdio protocol
//!
//! Frames as in [`replend_wire::write_frame`], each carrying a
//! versioned [`SummaryEnvelope`]:
//!
//! ```text
//! coordinator → worker   one frame per WorkerJob (any number of
//!                        jobs; stdin EOF ends the session)
//! worker → coordinator   one frame per CommunityReport, streamed in
//!                        job-index order, all of a job's reports
//!                        before the next job is read
//! ```
//!
//! The envelope's `seed` carries the job's `base_seed` so a
//! coordinator can reject misrouted summaries; its `version` is
//! checked before any payload decode ([`replend_wire`] docs state the
//! bump policy).

use crate::community::CommunityBuilder;
use crate::stats::{CommunityStats, Population};
use crate::{BootstrapPolicy, EngineKind};
use replend_types::hash::seed_for_run;
use replend_types::Table1;
use replend_wire::{read_frame, write_frame, SummaryEnvelope, WireError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};

/// A slice of cluster work: which communities to run (by seed-schedule
/// index), under which full configuration, for how long, and which
/// extras to sample. Crosses the process boundary encoded with
/// `replend-wire`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkerJob {
    /// Full simulation configuration (Table 1 + infrastructure
    /// knobs).
    pub config: Table1,
    /// Bootstrap policy.
    pub policy: BootstrapPolicy,
    /// Reputation engine selection.
    pub engine: EngineKind,
    /// Barabási–Albert attachment parameter of the topology.
    pub ba_attachment: u64,
    /// Probability an introducer-side score manager crashes before
    /// forwarding the loan credit.
    pub sm_crash_prob: f64,
    /// Member departure churn rate (0 = the paper's model).
    pub departure_rate: f64,
    /// Event-log retention per community (0 = logging disabled).
    /// Carried for spec fidelity — reports do not currently ship log
    /// contents, but workers must simulate exactly what the builder
    /// describes.
    pub log_capacity: u64,
    /// Base seed of the cluster; community `i` runs with
    /// `seed_for_run(base_seed, i)`.
    pub base_seed: u64,
    /// Seed-schedule indices of the communities this job covers.
    pub indices: Vec<u64>,
    /// Ticks to advance each community.
    pub ticks: u64,
    /// Sample the mean cooperative reputation every this many ticks
    /// into [`CommunityReport::series`] (0 = no series).
    pub sample_interval: u64,
    /// Bucket count of [`CommunityReport::histogram`] (0 = no
    /// histogram).
    pub histogram_buckets: u64,
}

impl WorkerJob {
    /// A job covering `indices` of a cluster built from `builder`
    /// with the given base seed. Tick count and sampling knobs start
    /// at zero — the coordinator fills them per run.
    pub fn from_builder(builder: &CommunityBuilder, base_seed: u64, indices: Vec<u64>) -> Self {
        WorkerJob {
            config: builder.config,
            policy: builder.policy,
            engine: builder.engine,
            ba_attachment: builder.ba_m as u64,
            sm_crash_prob: builder.sm_crash_prob,
            departure_rate: builder.departure_rate,
            log_capacity: builder.log_capacity as u64,
            base_seed,
            indices,
            ticks: 0,
            sample_interval: 0,
            histogram_buckets: 0,
        }
    }

    /// The same job restricted to a different index slice.
    fn with_indices(&self, indices: Vec<u64>) -> Self {
        WorkerJob {
            indices,
            ..self.clone()
        }
    }

    /// Splits the job into at most `n` contiguous slices (in index
    /// order, so concatenating the slices' reports reproduces the
    /// original index order). Empty slices are dropped — a job with
    /// no indices splits into no slices at all.
    pub fn split(&self, n: usize) -> Vec<WorkerJob> {
        let n = n.max(1).min(self.indices.len().max(1));
        let chunk = self.indices.len().div_ceil(n).max(1);
        self.indices
            .chunks(chunk)
            .map(|slice| self.with_indices(slice.to_vec()))
            .collect()
    }
}

/// Everything the cluster merge needs from one finished community.
/// Crosses the process boundary encoded with `replend-wire`; every
/// `f64` travels bit-exact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CommunityReport {
    /// Seed-schedule index of the community.
    pub index: u64,
    /// Final population snapshot.
    pub population: Population,
    /// Cumulative protocol counters.
    pub stats: CommunityStats,
    /// Mean reputation over cooperative members, if any.
    pub mean_coop_rep: Option<f64>,
    /// Mean reputation over uncooperative members, if any.
    pub mean_uncoop_rep: Option<f64>,
    /// Member-reputation histogram buckets
    /// ([`WorkerJob::histogram_buckets`] bins over `[0, 1]`; empty
    /// when not requested).
    pub histogram: Vec<u64>,
    /// Mean cooperative reputation sampled every
    /// [`WorkerJob::sample_interval`] ticks (empty when not
    /// requested). `None` marks a sample taken while the community
    /// had no cooperative members — distinct from a true `0.0` mean,
    /// so cluster merges stay exact when some communities are empty.
    pub series: Vec<Option<f64>>,
}

/// A worker transport failure (the wire layer, the pipe, or the peer
/// misbehaving).
#[derive(Debug)]
pub enum WorkerError {
    /// Encode/decode failure, including protocol-version mismatches.
    Wire(WireError),
    /// Pipe or process-spawn failure.
    Io(std::io::Error),
    /// The peer violated the protocol (bad exit status, wrong report
    /// count, misrouted seed, invalid job).
    Protocol(String),
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::Wire(e) => write!(f, "wire error: {e}"),
            WorkerError::Io(e) => write!(f, "worker I/O error: {e}"),
            WorkerError::Protocol(m) => write!(f, "worker protocol error: {m}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<WireError> for WorkerError {
    fn from(e: WireError) -> Self {
        WorkerError::Wire(e)
    }
}

impl From<std::io::Error> for WorkerError {
    fn from(e: std::io::Error) -> Self {
        WorkerError::Io(e)
    }
}

/// An executor of [`WorkerJob`]s. Implementations must return one
/// report per job index, in index order, each bit-identical to what
/// [`run_job`] produces in-process — transports move bytes, they do
/// not get to change results.
pub trait Worker: Send {
    /// Runs the job to completion and returns its reports.
    fn run(&mut self, job: &WorkerJob) -> Result<Vec<CommunityReport>, WorkerError>;
}

/// Builds and runs one community of a job, producing its report.
/// The single definition of "what a community report means" — every
/// transport bottoms out here.
pub fn run_one(job: &WorkerJob, index: u64) -> CommunityReport {
    let mut community = CommunityBuilder::new(job.config)
        .policy(job.policy)
        .engine(job.engine)
        .ba_attachment(job.ba_attachment as usize)
        .sm_crash_prob(job.sm_crash_prob)
        .departure_rate(job.departure_rate)
        .log_capacity(job.log_capacity as usize)
        .seed(seed_for_run(job.base_seed, index))
        .build();
    let series = if job.sample_interval > 0 {
        // The sample stays `Option` end to end: a cohort with no
        // cooperative members reports "no mean", never a fake 0.0.
        community.run_sampled_with(job.ticks, job.sample_interval, |c| {
            c.mean_cooperative_reputation()
        })
    } else {
        community.run(job.ticks);
        Vec::new()
    };
    let histogram = if job.histogram_buckets > 0 {
        community
            .reputation_histogram(job.histogram_buckets as usize)
            .buckets()
            .to_vec()
    } else {
        Vec::new()
    };
    CommunityReport {
        index,
        population: community.population(),
        stats: *community.stats(),
        mean_coop_rep: community.mean_cooperative_reputation(),
        mean_uncoop_rep: community.mean_uncooperative_reputation(),
        histogram,
        series,
    }
}

/// Runs every community of a job on the rayon pool, reports in index
/// order (the pool returns outputs in input order, so this is
/// bit-identical to a serial loop).
pub fn run_job(job: &WorkerJob) -> Vec<CommunityReport> {
    use rayon::prelude::*;
    job.indices
        .par_iter()
        .map(|&index| run_one(job, index))
        .collect()
}

/// The in-process transport: runs jobs on this process's pool.
#[derive(Clone, Copy, Debug, Default)]
pub struct InProcessWorker;

impl Worker for InProcessWorker {
    fn run(&mut self, job: &WorkerJob) -> Result<Vec<CommunityReport>, WorkerError> {
        Ok(run_job(job))
    }
}

/// The cross-process transport: spawns a child per job and speaks the
/// framed envelope protocol over its stdio pipes.
#[derive(Clone, Debug)]
pub struct SubprocessWorker {
    program: PathBuf,
    args: Vec<String>,
}

impl SubprocessWorker {
    /// A worker spawning `program worker` (the `replend-cli`
    /// subcommand) per job.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        SubprocessWorker {
            program: program.into(),
            args: vec!["worker".into()],
        }
    }

    /// A worker spawning `program` with custom arguments (tests use
    /// this to exercise protocol failures).
    pub fn with_args(program: impl Into<PathBuf>, args: Vec<String>) -> Self {
        SubprocessWorker {
            program: program.into(),
            args,
        }
    }
}

/// Folds the worker's captured stderr into an error message. Keeps
/// typed `Wire`/`Io` errors intact when the child said nothing.
fn with_stderr(err: WorkerError, stderr: &str) -> WorkerError {
    let stderr = stderr.trim();
    if stderr.is_empty() {
        return err;
    }
    WorkerError::Protocol(format!("{err}; worker stderr: {stderr}"))
}

impl Worker for SubprocessWorker {
    fn run(&mut self, job: &WorkerJob) -> Result<Vec<CommunityReport>, WorkerError> {
        let mut child = Command::new(&self.program)
            .args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()?;
        // Drain stderr on its own thread for the child's whole life:
        // a worker that chats on stderr must never block on a full
        // pipe, but whatever it said must reach the error message.
        // The tail accumulates *incrementally* in a shared buffer
        // (bounded; excess is discarded) rather than being returned on
        // join: a misbehaving worker can fork descendants that inherit
        // the pipe's write end and outlive the kill, so EOF — and
        // therefore a join — may never come. The drain thread signals
        // EOF over a channel and the coordinator waits for it only a
        // bounded grace period before reading whatever has arrived.
        let mut stderr = child.stderr.take().expect("stderr was piped");
        let stderr_tail = std::sync::Arc::new(std::sync::Mutex::new(String::new()));
        let (stderr_eof_tx, stderr_eof_rx) = std::sync::mpsc::channel::<()>();
        {
            let tail = std::sync::Arc::clone(&stderr_tail);
            std::thread::spawn(move || {
                let mut buf = [0u8; 4096];
                loop {
                    match stderr.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            let mut tail = tail.lock().expect("stderr tail lock");
                            if tail.len() < 16 * 1024 {
                                tail.push_str(&String::from_utf8_lossy(&buf[..n]));
                                tail.truncate(16 * 1024);
                            }
                        }
                    }
                }
                let _ = stderr_eof_tx.send(());
            });
        }

        let mut reports = Vec::with_capacity(job.indices.len());
        let outcome = (|| -> Result<(), WorkerError> {
            // One job per child: write it, close stdin so the child's
            // serve loop terminates after this job.
            {
                let mut stdin = child.stdin.take().expect("stdin was piped");
                let envelope = SummaryEnvelope::wrap(job.base_seed, job)?;
                write_frame(&mut stdin, &envelope.encode()?)?;
            }
            let mut stdout = child.stdout.take().expect("stdout was piped");
            while let Some(frame) = read_frame(&mut stdout)? {
                let envelope = SummaryEnvelope::decode(&frame)?;
                if envelope.seed != job.base_seed {
                    return Err(WorkerError::Protocol(format!(
                        "summary for seed {} on the stream of seed {}",
                        envelope.seed, job.base_seed
                    )));
                }
                reports.push(envelope.open::<CommunityReport>()?);
            }
            Ok(())
        })();

        // Reap the child on *every* path. On a mid-stream failure we
        // stop draining stdout, so the child could block forever on a
        // full pipe — kill it first, then wait; otherwise just wait.
        // Either way no zombie outlives this call.
        if outcome.is_err() {
            let _ = child.kill();
        }
        let status = child.wait();
        // Wait briefly for the drain thread to see EOF so a
        // well-behaved child's last words are all captured; if a
        // leaked descendant still holds the pipe open (only a kill
        // of the direct child can leave one behind), take the tail
        // as-is and let the drain thread finish in the background.
        let _ = stderr_eof_rx.recv_timeout(std::time::Duration::from_secs(2));
        let stderr_tail = stderr_tail.lock().expect("stderr tail lock").clone();

        outcome.map_err(|e| with_stderr(e, &stderr_tail))?;
        let status = status?;
        if !status.success() {
            return Err(with_stderr(
                WorkerError::Protocol(format!("worker process exited with {status}")),
                &stderr_tail,
            ));
        }
        if reports.len() != job.indices.len() {
            return Err(with_stderr(
                WorkerError::Protocol(format!(
                    "worker returned {} reports for {} communities",
                    reports.len(),
                    job.indices.len()
                )),
                &stderr_tail,
            ));
        }
        for (report, &index) in reports.iter().zip(&job.indices) {
            if report.index != index {
                return Err(with_stderr(
                    WorkerError::Protocol(format!(
                        "worker returned report for community {} where {} was expected",
                        report.index, index
                    )),
                    &stderr_tail,
                ));
            }
        }
        Ok(reports)
    }
}

/// The worker side of the stdio protocol — the body of the
/// `replend worker` subcommand, on abstract streams so tests can
/// drive it over in-memory buffers. Reads framed jobs until EOF,
/// streaming each job's reports (in index order) before reading the
/// next.
pub fn serve<R: Read, W: Write>(reader: &mut R, writer: &mut W) -> Result<(), WorkerError> {
    serve_tuned(reader, writer, None)
}

/// [`serve`] with an optional host-calibration profile: when given,
/// the profile's measured `parallel_batch_min` and shard count
/// replace the corresponding engine knobs of every incoming job
/// before it runs. Both knobs are byte-identity-safe by engine
/// contract (results are independent of shard count and fan-out
/// threshold — pinned by the knob-invariance suite), so a tuned
/// worker's reports stay bit-identical to an untuned one's; only the
/// timing may differ. The coordinator's own flags still win: it sends
/// jobs, not profiles, and a coordinator that wants specific knobs
/// simply spawns workers without `--profile`.
pub fn serve_tuned<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    profile: Option<&replend_types::HostProfile>,
) -> Result<(), WorkerError> {
    while let Some(frame) = read_frame(reader)? {
        let envelope = SummaryEnvelope::decode(&frame)?;
        let mut job: WorkerJob = envelope.open()?;
        if let Some(p) = profile {
            job.config.sim.parallel_batch_min = p.effective_batch_min();
            job.config.sim.num_shards = p.num_shards as usize;
        }
        job.config
            .validate()
            .map_err(|e| WorkerError::Protocol(format!("invalid job configuration: {e}")))?;
        for report in run_job(&job) {
            let envelope = SummaryEnvelope::wrap(job.base_seed, &report)?;
            write_frame(writer, &envelope.encode()?)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use replend_types::hash::seed_for_run;

    fn small_job(indices: Vec<u64>) -> WorkerJob {
        let builder = CommunityBuilder::new(
            Table1::paper_defaults()
                .with_num_init(40)
                .with_arrival_rate(0.05)
                .with_num_trans(5_000),
        );
        let mut job = WorkerJob::from_builder(&builder, 77, indices);
        job.ticks = 1_500;
        job
    }

    #[test]
    fn job_round_trips_through_the_wire() {
        let mut job = small_job(vec![0, 1, 5]);
        job.sample_interval = 500;
        job.histogram_buckets = 10;
        let bytes = replend_wire::to_bytes(&job).unwrap();
        let back: WorkerJob = replend_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, job);
    }

    #[test]
    fn report_matches_direct_community_run() {
        let mut job = small_job(vec![3]);
        job.sample_interval = 500;
        job.histogram_buckets = 8;
        let report = run_one(&job, 3);
        assert_eq!(report.index, 3);

        let mut solo = CommunityBuilder::new(job.config)
            .seed(seed_for_run(77, 3))
            .build();
        let series = solo.run_sampled_with(job.ticks, 500, |c| c.mean_cooperative_reputation());
        assert_eq!(report.population, solo.population());
        assert_eq!(report.stats, *solo.stats());
        assert_eq!(
            report.mean_coop_rep.map(f64::to_bits),
            solo.mean_cooperative_reputation().map(f64::to_bits)
        );
        assert_eq!(report.series, series);
        assert_eq!(
            report.histogram,
            solo.reputation_histogram(8).buckets().to_vec()
        );
    }

    #[test]
    fn run_job_covers_indices_in_order() {
        let job = small_job(vec![2, 0, 4]);
        let reports = run_job(&job);
        assert_eq!(
            reports.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![2, 0, 4]
        );
        // Each report is the index's deterministic function, not a
        // position artifact.
        assert_eq!(reports[1], run_one(&job, 0));
    }

    #[test]
    fn split_covers_all_indices_contiguously() {
        let job = small_job((0..7).collect());
        let parts = job.split(3);
        assert_eq!(parts.len(), 3);
        let rejoined: Vec<u64> = parts.iter().flat_map(|p| p.indices.clone()).collect();
        assert_eq!(rejoined, (0..7).collect::<Vec<_>>());
        // More workers than communities: one community per slice.
        assert_eq!(job.split(100).len(), 7);
        // Degenerate empty job: nothing to run, no slices.
        assert_eq!(small_job(vec![]).split(4).len(), 0);
    }

    #[test]
    fn serve_round_trips_over_in_memory_pipes() {
        let mut job = small_job(vec![0, 1]);
        job.ticks = 800;
        let envelope = SummaryEnvelope::wrap(job.base_seed, &job).unwrap();
        let mut stdin = Vec::new();
        write_frame(&mut stdin, &envelope.encode().unwrap()).unwrap();

        let mut stdout = Vec::new();
        serve(&mut stdin.as_slice(), &mut stdout).unwrap();

        let mut reader = stdout.as_slice();
        let mut reports = Vec::new();
        while let Some(frame) = read_frame(&mut reader).unwrap() {
            let envelope = SummaryEnvelope::decode(&frame).unwrap();
            assert_eq!(envelope.seed, job.base_seed);
            reports.push(envelope.open::<CommunityReport>().unwrap());
        }
        assert_eq!(
            reports,
            run_job(&job),
            "served reports must be bit-identical"
        );
    }

    #[test]
    fn tuned_serve_is_byte_identical_to_untuned() {
        let mut job = small_job(vec![0, 1]);
        job.ticks = 800;
        let envelope = SummaryEnvelope::wrap(job.base_seed, &job).unwrap();
        let mut stdin = Vec::new();
        write_frame(&mut stdin, &envelope.encode().unwrap()).unwrap();

        let mut plain = Vec::new();
        serve(&mut stdin.as_slice(), &mut plain).unwrap();

        // A profile with knobs far from the job's own: results must
        // not move by a single byte (the engine's shard-count and
        // threshold independence, seen end-to-end at the transport).
        let profile = replend_types::HostProfile {
            version: replend_types::HOST_PROFILE_VERSION,
            threads: 1,
            parallel_batch_min: replend_types::POOL_NEVER_WINS,
            num_shards: 3,
            host: "test-host".into(),
        };
        let mut tuned = Vec::new();
        serve_tuned(&mut stdin.as_slice(), &mut tuned, Some(&profile)).unwrap();
        assert_eq!(plain, tuned, "profile knobs must not change report bytes");
    }

    #[test]
    fn serve_rejects_version_mismatch_and_bad_jobs() {
        // Bumped version: typed error before the payload is decoded.
        let job = small_job(vec![0]);
        let mut envelope = SummaryEnvelope::wrap(job.base_seed, &job).unwrap();
        envelope.version += 1;
        let mut stdin = Vec::new();
        write_frame(&mut stdin, &envelope.encode().unwrap()).unwrap();
        let err = serve(&mut stdin.as_slice(), &mut Vec::new()).unwrap_err();
        assert!(
            matches!(
                err,
                WorkerError::Wire(WireError::VersionMismatch { found, .. })
                    if found == replend_wire::PROTOCOL_VERSION + 1
            ),
            "{err:?}"
        );

        // An invalid configuration is rejected before any simulation
        // is built (the builder would panic; the worker must not).
        let mut bad = small_job(vec![0]);
        bad.config.sim.f_uncoop = 2.0;
        let envelope = SummaryEnvelope::wrap(bad.base_seed, &bad).unwrap();
        let mut stdin = Vec::new();
        write_frame(&mut stdin, &envelope.encode().unwrap()).unwrap();
        let err = serve(&mut stdin.as_slice(), &mut Vec::new()).unwrap_err();
        assert!(matches!(err, WorkerError::Protocol(_)), "{err:?}");

        // An empty stream is a clean no-op session.
        serve(&mut [].as_slice(), &mut Vec::new()).unwrap();
    }
}

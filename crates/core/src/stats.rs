//! Admission ledger, decision success rate, and population counters.
//!
//! Everything the paper's figures read out of a run:
//!
//! * Figures 1, 3, 4, 5, 6 — cooperative / uncooperative member
//!   counts and the two refusal series;
//! * §4.1 — the decision success rate
//!   `(N_acc_coop + N_den_uncoop) / total decisions`, evaluated over
//!   the admit/deny decisions taken by **cooperative** respondents.

use serde::{Deserialize, Serialize};

/// Cumulative counters of one community run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CommunityStats {
    /// Arrivals whose behaviour is cooperative.
    pub arrived_cooperative: u64,
    /// Arrivals whose behaviour is uncooperative.
    pub arrived_uncooperative: u64,
    /// Cooperative arrivals admitted.
    pub admitted_cooperative: u64,
    /// Uncooperative arrivals admitted.
    pub admitted_uncooperative: u64,
    /// Arrivals refused because the chosen introducer was below
    /// `minIntro` ("Entry Refused due to Introducer Reputation").
    pub refused_introducer_reputation: u64,
    /// Arrivals refused by a selective introducer ("Entry Refused to
    /// Uncooperative Peer").
    pub refused_selective: u64,
    /// Arrivals refused because no member could be selected.
    pub refused_no_introducer: u64,
    /// Peers flagged for the duplicate-introduction attack.
    pub flagged_malicious: u64,
    /// Audits with a satisfactory verdict.
    pub audits_passed: u64,
    /// Audits with an unsatisfactory verdict.
    pub audits_failed: u64,
    /// Transactions in which a cooperative respondent **served** a
    /// cooperative requester (correct decision).
    pub accepted_cooperative: u64,
    /// Cooperative respondent denied a cooperative requester
    /// (incorrect).
    pub denied_cooperative: u64,
    /// Cooperative respondent served an uncooperative requester
    /// (incorrect).
    pub accepted_uncooperative: u64,
    /// Cooperative respondent denied an uncooperative requester
    /// (correct).
    pub denied_uncooperative: u64,
    /// Members that left under the departure-churn extension.
    pub departures: u64,
    /// Total transaction ticks executed.
    pub ticks: u64,
    /// Transactions where service actually happened.
    pub served_transactions: u64,
}

impl CommunityStats {
    /// The §4.1 decision success rate:
    /// `(accepted_cooperative + denied_uncooperative) / all decisions
    /// by cooperative respondents`. `None` before any decision.
    pub fn success_rate(&self) -> Option<f64> {
        let correct = self.accepted_cooperative + self.denied_uncooperative;
        let total = correct + self.denied_cooperative + self.accepted_uncooperative;
        if total == 0 {
            return None;
        }
        Some(correct as f64 / total as f64)
    }

    /// Adds every counter of `other` into `self` — used by the
    /// multi-community cluster to expose fleet-wide totals.
    pub fn accumulate(&mut self, other: &CommunityStats) {
        // Exhaustive destructuring (no `..`): adding a counter to the
        // struct without folding it in here is a compile error.
        let CommunityStats {
            arrived_cooperative,
            arrived_uncooperative,
            admitted_cooperative,
            admitted_uncooperative,
            refused_introducer_reputation,
            refused_selective,
            refused_no_introducer,
            flagged_malicious,
            audits_passed,
            audits_failed,
            accepted_cooperative,
            denied_cooperative,
            accepted_uncooperative,
            denied_uncooperative,
            departures,
            ticks,
            served_transactions,
        } = *other;
        self.arrived_cooperative += arrived_cooperative;
        self.arrived_uncooperative += arrived_uncooperative;
        self.admitted_cooperative += admitted_cooperative;
        self.admitted_uncooperative += admitted_uncooperative;
        self.refused_introducer_reputation += refused_introducer_reputation;
        self.refused_selective += refused_selective;
        self.refused_no_introducer += refused_no_introducer;
        self.flagged_malicious += flagged_malicious;
        self.audits_passed += audits_passed;
        self.audits_failed += audits_failed;
        self.accepted_cooperative += accepted_cooperative;
        self.denied_cooperative += denied_cooperative;
        self.accepted_uncooperative += accepted_uncooperative;
        self.denied_uncooperative += denied_uncooperative;
        self.departures += departures;
        self.ticks += ticks;
        self.served_transactions += served_transactions;
    }

    /// Total arrivals.
    pub fn arrived_total(&self) -> u64 {
        self.arrived_cooperative + self.arrived_uncooperative
    }

    /// Total admissions.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_cooperative + self.admitted_uncooperative
    }

    /// Total refusals, across all reasons.
    pub fn refused_total(&self) -> u64 {
        self.refused_introducer_reputation + self.refused_selective + self.refused_no_introducer
    }
}

/// A point-in-time population snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Population {
    /// Admitted members currently in the community.
    pub members: usize,
    /// … of which cooperative.
    pub cooperative: usize,
    /// … of which uncooperative.
    pub uncooperative: usize,
    /// Arrivals still waiting out the introduction period.
    pub waiting: usize,
    /// Arrivals refused (terminal).
    pub refused: usize,
    /// Peers flagged malicious (terminal).
    pub flagged: usize,
    /// Peers that left the community (departure churn extension).
    pub departed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_rate_none_without_decisions() {
        assert_eq!(CommunityStats::default().success_rate(), None);
    }

    #[test]
    fn success_rate_formula() {
        let s = CommunityStats {
            accepted_cooperative: 90,
            denied_uncooperative: 7,
            denied_cooperative: 2,
            accepted_uncooperative: 1,
            ..Default::default()
        };
        assert!((s.success_rate().unwrap() - 0.97).abs() < 1e-12);
    }

    #[test]
    fn totals() {
        let s = CommunityStats {
            arrived_cooperative: 30,
            arrived_uncooperative: 10,
            admitted_cooperative: 25,
            admitted_uncooperative: 3,
            refused_introducer_reputation: 5,
            refused_selective: 7,
            refused_no_introducer: 0,
            ..Default::default()
        };
        assert_eq!(s.arrived_total(), 40);
        assert_eq!(s.admitted_total(), 28);
        assert_eq!(s.refused_total(), 12);
    }
}

//! The performance audit (§3, "Performance audit").
//!
//! *"After the new peer completed `auditTrans` number of transactions
//! its score managers will audit its performance. If the performance
//! is deemed satisfactory based on its reputation value, the
//! introducer is given back the reputation that it had lent along
//! with a small reward … If the performance of the new peer is
//! unsatisfactory, the introducer loses the lent reputation … The
//! score managers of the new peer also reduce the stored reputation
//! of the new entrant by introAmt subject to a minimum of 0."*
//!
//! The transaction countdown lives in
//! [`PeerRecord::record_transaction`](crate::peer::PeerRecord::record_transaction);
//! this module evaluates the verdict and produces the settlement that
//! the community applies through its reputation engine.

use crate::lending;
use replend_types::{LendingParams, PeerId, Reputation};

/// The settlement decided by an audit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuditSettlement {
    /// The audited newcomer.
    pub newcomer: PeerId,
    /// Its introducer.
    pub introducer: PeerId,
    /// Verdict: was the newcomer's performance satisfactory?
    pub satisfactory: bool,
    /// Reputation credited to the introducer (stake + reward on
    /// success, 0 on failure).
    pub introducer_credit: f64,
    /// Reputation debited from the newcomer (0 on success, the stake
    /// on failure).
    pub newcomer_debit: f64,
}

/// Evaluates the audit of `newcomer` (currently holding
/// `newcomer_rep`) introduced by `introducer`.
pub fn perform_audit(
    params: &LendingParams,
    newcomer: PeerId,
    introducer: PeerId,
    newcomer_rep: Reputation,
) -> AuditSettlement {
    let satisfactory = lending::audit_verdict(params, newcomer_rep);
    if satisfactory {
        AuditSettlement {
            newcomer,
            introducer,
            satisfactory,
            introducer_credit: lending::settlement_on_success(params),
            newcomer_debit: 0.0,
        }
    } else {
        AuditSettlement {
            newcomer,
            introducer,
            satisfactory,
            introducer_credit: 0.0,
            newcomer_debit: lending::newcomer_penalty_on_failure(params),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params() -> LendingParams {
        LendingParams::default()
    }

    #[test]
    fn satisfactory_audit_repays_with_reward() {
        let s = perform_audit(&params(), PeerId(2), PeerId(1), Reputation::new(0.8));
        assert!(s.satisfactory);
        assert!((s.introducer_credit - 0.12).abs() < 1e-12);
        assert_eq!(s.newcomer_debit, 0.0);
        assert_eq!(s.newcomer, PeerId(2));
        assert_eq!(s.introducer, PeerId(1));
    }

    #[test]
    fn unsatisfactory_audit_burns_stake_and_penalizes_newcomer() {
        let s = perform_audit(&params(), PeerId(2), PeerId(1), Reputation::new(0.2));
        assert!(!s.satisfactory);
        assert_eq!(s.introducer_credit, 0.0);
        assert!((s.newcomer_debit - 0.1).abs() < 1e-12);
    }

    #[test]
    fn verdict_boundary_is_inclusive() {
        let s = perform_audit(&params(), PeerId(2), PeerId(1), Reputation::new(0.5));
        assert!(s.satisfactory);
    }

    proptest! {
        /// Exactly one side of the settlement is ever non-zero.
        #[test]
        fn settlement_is_one_sided(rep in 0.0f64..=1.0) {
            let s = perform_audit(&params(), PeerId(2), PeerId(1), Reputation::new(rep));
            if s.satisfactory {
                prop_assert!(s.introducer_credit > 0.0);
                prop_assert_eq!(s.newcomer_debit, 0.0);
            } else {
                prop_assert_eq!(s.introducer_credit, 0.0);
                prop_assert!(s.newcomer_debit > 0.0);
            }
        }
    }
}

//! The message-level introduction protocol (§2, "Multiple
//! introduction requests").
//!
//! The paper specifies the loan as an explicit message flow:
//!
//! > *"It sends a signed message to its score managers telling them
//! > to deduct the lent amount from its reputation. … These score
//! > managers then send a message to each of the score managers of
//! > the new peer telling them to credit the new peer with this
//! > amount. Since each score manager of the introducer sends
//! > messages to each score manager of the new peer, **redundancy is
//! > introduced in the system in case a score manager crashes** before
//! > being able to contact the new peer's score managers."*
//!
//! [`MessageBus`] models that flow: `numSM × numSM` credit messages
//! per introduction, per-message loss injection (a crashed sender
//! never sends), and **idempotent application** at the receiving
//! score managers — each receiving replica applies a given
//! `RequestId` at most once, no matter how many of the `numSM` copies
//! reach it. The community uses the bus for every loan, so message
//! counts and loss tolerance are measurable; the net effect is then
//! applied to the reputation engine exactly once.

use rand::Rng;
use replend_types::{PeerId, RequestId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Message kinds of the introduction flow, counted by the bus.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MessageKind {
    /// Newcomer → potential introducer: plea for an introduction.
    IntroductionRequest,
    /// Introducer → each of its own score managers (signed): deduct
    /// the lent amount.
    DeductStake,
    /// Introducer's score manager → each of the newcomer's score
    /// managers: credit the newcomer.
    CreditNewcomer,
    /// Introducer → newcomer at the end of the waiting period:
    /// decision notification.
    IntroductionResponse,
    /// Newcomer's score managers → introducer's score managers:
    /// audit verdict (repay/penalize).
    AuditVerdict,
}

/// Per-kind delivery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageCounters {
    /// Introduction pleas sent.
    pub introduction_requests: u64,
    /// Stake-deduction messages sent to introducer SMs.
    pub deduct_stake: u64,
    /// Credit messages sent between SM sets (before loss).
    pub credit_sent: u64,
    /// Credit messages actually delivered.
    pub credit_delivered: u64,
    /// Credit messages that were duplicates at the receiving replica.
    pub credit_duplicates: u64,
    /// Decision notifications.
    pub responses: u64,
    /// Audit verdict messages.
    pub audit_verdicts: u64,
}

/// Outcome of the credit fan-out of one introduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CreditOutcome {
    /// Receiving replicas that applied the credit (0..=num_sm).
    pub replicas_credited: usize,
    /// True when at least one replica received the credit — the
    /// introduction survives SM crashes.
    pub delivered: bool,
}

/// The in-process message bus of one community.
///
/// Messages are delivered instantly (§3: no transmission delays or
/// losses on the network path); what *can* fail is a score manager
/// crashing before forwarding, modelled by `sender_crash_prob`.
#[derive(Clone, Debug)]
pub struct MessageBus {
    num_sm: usize,
    sender_crash_prob: f64,
    counters: MessageCounters,
    /// (receiving replica slot, request) pairs already applied —
    /// the idempotence memory of the newcomer-side score managers.
    applied: HashSet<(PeerId, usize, RequestId)>,
}

impl MessageBus {
    /// A bus for communities with `num_sm` score managers per peer
    /// and the given per-sender crash probability.
    ///
    /// # Panics
    /// If `num_sm` is zero or the probability is outside `[0, 1]`.
    pub fn new(num_sm: usize, sender_crash_prob: f64) -> Self {
        assert!(num_sm > 0, "need at least one score manager");
        assert!(
            (0.0..=1.0).contains(&sender_crash_prob),
            "crash probability must be in [0, 1]"
        );
        MessageBus {
            num_sm,
            sender_crash_prob,
            counters: MessageCounters::default(),
            applied: HashSet::new(),
        }
    }

    /// Current counters.
    pub fn counters(&self) -> MessageCounters {
        self.counters
    }

    /// Records the newcomer's introduction plea.
    pub fn send_introduction_request(&mut self) {
        self.counters.introduction_requests += 1;
    }

    /// Records the introducer's decision notification.
    pub fn send_response(&mut self) {
        self.counters.responses += 1;
    }

    /// Records the audit-verdict fan-out (newcomer SMs → introducer
    /// SMs, one message per pair).
    pub fn send_audit_verdict(&mut self) {
        self.counters.audit_verdicts += (self.num_sm * self.num_sm) as u64;
    }

    /// Performs the full loan fan-out for `request` crediting
    /// `newcomer`:
    ///
    /// 1. the introducer sends `DeductStake` to each of its `numSM`
    ///    score managers;
    /// 2. each introducer-SM that does not crash sends
    ///    `CreditNewcomer` to each of the newcomer's `numSM` SMs;
    /// 3. each receiving SM applies the credit **once** (duplicates
    ///    from the redundancy are detected via the unique request
    ///    id).
    pub fn fan_out_credit<R: Rng + ?Sized>(
        &mut self,
        request: RequestId,
        newcomer: PeerId,
        rng: &mut R,
    ) -> CreditOutcome {
        self.counters.deduct_stake += self.num_sm as u64;
        let mut replicas_credited = 0usize;
        for sender in 0..self.num_sm {
            let crashed = self.sender_crash_prob > 0.0 && rng.gen::<f64>() < self.sender_crash_prob;
            if crashed {
                // A crashed SM sends nothing — this is exactly the
                // failure the numSM-fold redundancy exists to mask.
                let _ = sender;
                continue;
            }
            for receiver in 0..self.num_sm {
                self.counters.credit_sent += 1;
                self.counters.credit_delivered += 1;
                if self.applied.insert((newcomer, receiver, request)) {
                    replicas_credited += 1;
                } else {
                    self.counters.credit_duplicates += 1;
                }
            }
        }
        CreditOutcome {
            replicas_credited,
            delivered: replicas_credited > 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bus(num_sm: usize, crash: f64) -> (MessageBus, StdRng) {
        (MessageBus::new(num_sm, crash), StdRng::seed_from_u64(1))
    }

    #[test]
    #[should_panic(expected = "at least one score manager")]
    fn zero_sm_rejected() {
        MessageBus::new(0, 0.0);
    }

    #[test]
    #[should_panic(expected = "crash probability")]
    fn bad_probability_rejected() {
        MessageBus::new(6, 1.5);
    }

    #[test]
    fn fan_out_without_crashes_credits_every_replica_once() {
        let (mut bus, mut rng) = bus(6, 0.0);
        let out = bus.fan_out_credit(RequestId(1), PeerId(9), &mut rng);
        assert!(out.delivered);
        assert_eq!(out.replicas_credited, 6);
        let c = bus.counters();
        assert_eq!(c.deduct_stake, 6);
        assert_eq!(c.credit_sent, 36, "numSM × numSM redundancy");
        // 36 arrive, 6 are first-at-their-replica, 30 are duplicates.
        assert_eq!(c.credit_duplicates, 30);
    }

    #[test]
    fn redundancy_masks_partial_crashes() {
        // With 6 senders and 50% crash probability, at least one
        // sender almost surely survives; every surviving sender
        // reaches every receiver, so all replicas get credited.
        let (mut bus, mut rng) = bus(6, 0.5);
        for r in 0..100u64 {
            let out = bus.fan_out_credit(RequestId(r), PeerId(r), &mut rng);
            if out.delivered {
                assert_eq!(
                    out.replicas_credited, 6,
                    "one surviving sender suffices for all replicas"
                );
            }
        }
        let c = bus.counters();
        assert!(c.credit_sent < 3600, "crashes suppressed some sends");
        assert!(c.credit_sent > 0);
    }

    #[test]
    fn total_crash_loses_the_credit() {
        let (mut bus, mut rng) = bus(3, 1.0);
        let out = bus.fan_out_credit(RequestId(1), PeerId(2), &mut rng);
        assert!(!out.delivered);
        assert_eq!(out.replicas_credited, 0);
        assert_eq!(bus.counters().credit_sent, 0);
        assert_eq!(bus.counters().deduct_stake, 3, "stake deduction still sent");
    }

    #[test]
    fn repeat_request_is_fully_deduplicated() {
        // Re-delivering the same request id (e.g. a retransmit)
        // credits nothing.
        let (mut bus, mut rng) = bus(4, 0.0);
        let first = bus.fan_out_credit(RequestId(7), PeerId(1), &mut rng);
        assert_eq!(first.replicas_credited, 4);
        let second = bus.fan_out_credit(RequestId(7), PeerId(1), &mut rng);
        assert_eq!(second.replicas_credited, 0, "idempotence");
        assert!(!second.delivered);
    }

    #[test]
    fn distinct_requests_are_independent() {
        let (mut bus, mut rng) = bus(2, 0.0);
        let a = bus.fan_out_credit(RequestId(1), PeerId(1), &mut rng);
        let b = bus.fan_out_credit(RequestId(2), PeerId(1), &mut rng);
        assert_eq!(a.replicas_credited, 2);
        assert_eq!(b.replicas_credited, 2);
    }

    #[test]
    fn counters_track_auxiliary_messages() {
        let (mut bus, _) = bus(6, 0.0);
        bus.send_introduction_request();
        bus.send_response();
        bus.send_audit_verdict();
        let c = bus.counters();
        assert_eq!(c.introduction_requests, 1);
        assert_eq!(c.responses, 1);
        assert_eq!(c.audit_verdicts, 36);
    }

    proptest! {
        /// Delivery is all-or-nothing per replica set: if any sender
        /// survives, every replica is credited exactly once.
        #[test]
        fn survivor_implies_full_credit(
            num_sm in 1usize..8,
            crash in 0.0f64..=1.0,
            seed in proptest::num::u64::ANY,
        ) {
            let mut bus = MessageBus::new(num_sm, crash);
            let mut rng = StdRng::seed_from_u64(seed);
            let out = bus.fan_out_credit(RequestId(0), PeerId(0), &mut rng);
            if out.delivered {
                prop_assert_eq!(out.replicas_credited, num_sm);
            } else {
                prop_assert_eq!(out.replicas_credited, 0);
            }
        }

        /// Credit messages sent is always a multiple of numSM
        /// (surviving senders × receivers).
        #[test]
        fn sends_are_multiples_of_num_sm(
            num_sm in 1usize..8,
            crash in 0.0f64..=1.0,
            seed in proptest::num::u64::ANY,
        ) {
            let mut bus = MessageBus::new(num_sm, crash);
            let mut rng = StdRng::seed_from_u64(seed);
            bus.fan_out_credit(RequestId(0), PeerId(0), &mut rng);
            prop_assert_eq!(bus.counters().credit_sent % num_sm as u64, 0);
        }
    }
}

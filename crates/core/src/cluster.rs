//! In-process multi-community parallelism.
//!
//! A [`CommunityCluster`] owns K independent [`Community`] instances
//! — separate populations, separate engines, separate RNG streams
//! with seeds derived via the workspace's standard
//! `seed_for_run(base_seed, i)` schedule — and steps them on the
//! rayon pool through the generic
//! [`Cluster`](replend_sim::cluster::Cluster) substrate. This is the
//! score-manager overlay's scale-out story *within* one process: the
//! paper's repeated-run experiments, multi-tenant deployments (one
//! community per application), and parameter sweeps all reduce to
//! "run K communities that never talk to each other".
//!
//! Because the communities are independent, parallel stepping is
//! bit-identical to stepping them one after another, and the merged
//! aggregates below are plain reductions over the per-community O(1)
//! reads.

use crate::community::{Community, CommunityBuilder};
use crate::stats::{CommunityStats, Population};
use replend_sim::cluster::{Cluster, ClusterNode};
use replend_sim::series::TimeSeries;
use replend_sim::stats::Histogram;
use replend_types::SimTime;

impl ClusterNode for Community {
    fn advance(&mut self, ticks: u64) {
        self.run(ticks);
    }
}

/// Everything a sweep or operator view needs from one member
/// community of a cluster.
#[derive(Clone, Copy, Debug)]
pub struct CommunitySummary {
    /// Index in the cluster (seed schedule position).
    pub index: usize,
    /// Final population snapshot.
    pub population: Population,
    /// Mean reputation of cooperative members, if any.
    pub mean_coop_rep: Option<f64>,
    /// Mean reputation of uncooperative members, if any.
    pub mean_uncoop_rep: Option<f64>,
    /// §4.1 decision success rate, if any decision was taken.
    pub success_rate: Option<f64>,
}

/// K independent communities stepped in parallel.
pub struct CommunityCluster {
    inner: Cluster<Community>,
}

impl CommunityCluster {
    /// Builds `communities` communities from one configured builder.
    /// Community `i` gets the seed `seed_for_run(base_seed, i)` — the
    /// exact schedule of
    /// [`run_many_parallel`](replend_sim::runner::run_many_parallel),
    /// so a K-community cluster reproduces K independent seeded runs.
    pub fn build(builder: CommunityBuilder, communities: usize, base_seed: u64) -> Self {
        CommunityCluster {
            inner: Cluster::from_seeds(communities, base_seed, |seed| builder.seed(seed).build()),
        }
    }

    /// Number of communities.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the cluster holds no communities.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The communities, in seed-schedule order.
    pub fn communities(&self) -> &[Community] {
        self.inner.nodes()
    }

    /// Mutable access to the communities (scenario scripting).
    pub fn communities_mut(&mut self) -> &mut [Community] {
        self.inner.nodes_mut()
    }

    /// Advances every community by `ticks`, in parallel.
    pub fn run(&mut self, ticks: u64) {
        self.inner.step_all(ticks);
    }

    /// Advances every community by `ticks` while sampling
    /// `sampler(community)` every `interval` ticks, in parallel.
    /// Returns one aligned series per community — feed them to
    /// [`average_series`](replend_sim::series::average_series) for
    /// the paper's cross-run averages.
    pub fn run_sampled<F>(&mut self, ticks: u64, interval: u64, sampler: F) -> Vec<TimeSeries>
    where
        F: Fn(&Community) -> f64 + Sync,
    {
        self.inner.run_sampled(ticks, interval, sampler)
    }

    /// The latest common simulation time across the cluster (they
    /// advance in lockstep under [`CommunityCluster::run`]).
    pub fn time(&self) -> SimTime {
        self.communities()
            .iter()
            .map(|c| c.time())
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// Merged population counters over all communities.
    pub fn population(&self) -> Population {
        let mut total = Population::default();
        for c in self.communities() {
            // Exhaustive destructuring (no `..`): adding a Population
            // counter without merging it here is a compile error.
            let Population {
                members,
                cooperative,
                uncooperative,
                waiting,
                refused,
                flagged,
                departed,
            } = c.population();
            total.members += members;
            total.cooperative += cooperative;
            total.uncooperative += uncooperative;
            total.waiting += waiting;
            total.refused += refused;
            total.flagged += flagged;
            total.departed += departed;
        }
        total
    }

    /// Summed protocol counters over all communities.
    pub fn stats(&self) -> CommunityStats {
        let mut total = CommunityStats::default();
        for c in self.communities() {
            total.accumulate(c.stats());
        }
        total
    }

    /// Mean reputation over every cooperative member in the cluster
    /// (each community's O(1) mean, weighted by its cooperative
    /// population). `None` when there are none.
    pub fn mean_cooperative_reputation(&self) -> Option<f64> {
        Self::weighted_mean(
            self.communities()
                .iter()
                .map(|c| (c.mean_cooperative_reputation(), c.population().cooperative)),
        )
    }

    /// Mean reputation over every uncooperative member in the
    /// cluster. `None` when there are none.
    pub fn mean_uncooperative_reputation(&self) -> Option<f64> {
        Self::weighted_mean(self.communities().iter().map(|c| {
            (
                c.mean_uncooperative_reputation(),
                c.population().uncooperative,
            )
        }))
    }

    fn weighted_mean(parts: impl Iterator<Item = (Option<f64>, usize)>) -> Option<f64> {
        let (mut sum, mut n) = (0.0, 0usize);
        for (mean, count) in parts {
            if let Some(m) = mean {
                sum += m * count as f64;
                n += count;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Merged member-reputation histogram over `buckets` equal bins
    /// of `[0, 1]` — bucket-wise sum of the per-community histograms.
    pub fn reputation_histogram(&self, buckets: usize) -> Histogram {
        let mut merged = Histogram::new(0.0, crate::peer_table::HIST_HI, buckets);
        for c in self.communities() {
            let h = c.reputation_histogram(buckets);
            for (i, &count) in h.buckets().iter().enumerate() {
                merged.add_to_bucket(i, count);
            }
        }
        merged
    }

    /// Per-community summaries, in seed-schedule order.
    pub fn summaries(&self) -> Vec<CommunitySummary> {
        self.communities()
            .iter()
            .enumerate()
            .map(|(index, c)| CommunitySummary {
                index,
                population: c.population(),
                mean_coop_rep: c.mean_cooperative_reputation(),
                mean_uncoop_rep: c.mean_uncooperative_reputation(),
                success_rate: c.stats().success_rate(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replend_types::hash::seed_for_run;
    use replend_types::Table1;

    fn small_builder() -> CommunityBuilder {
        CommunityBuilder::new(
            Table1::paper_defaults()
                .with_num_init(40)
                .with_arrival_rate(0.05)
                .with_num_trans(5_000),
        )
    }

    #[test]
    fn cluster_reproduces_independent_runs_exactly() {
        let mut cluster = CommunityCluster::build(small_builder(), 4, 77);
        cluster.run(2_000);
        for (i, c) in cluster.communities().iter().enumerate() {
            let mut solo = small_builder().seed(seed_for_run(77, i as u64)).build();
            solo.run(2_000);
            assert_eq!(c.stats(), solo.stats(), "community {i}");
            assert_eq!(c.population(), solo.population());
            assert_eq!(
                c.mean_cooperative_reputation().map(f64::to_bits),
                solo.mean_cooperative_reputation().map(f64::to_bits),
                "community {i} mean must be bit-identical to its solo run"
            );
        }
        assert_eq!(cluster.time(), SimTime(2_000));
    }

    #[test]
    fn merged_aggregates_are_reductions_of_members() {
        let mut cluster = CommunityCluster::build(small_builder(), 3, 5);
        cluster.run(3_000);
        let merged = cluster.population();
        let by_hand: usize = cluster
            .communities()
            .iter()
            .map(|c| c.population().members)
            .sum();
        assert_eq!(merged.members, by_hand);
        assert_eq!(
            merged.members,
            merged.cooperative + merged.uncooperative,
            "behaviour split covers the membership"
        );

        // Weighted mean equals the flat mean over all members.
        let mut sum = 0.0;
        let mut n = 0usize;
        for c in cluster.communities() {
            if let Some(m) = c.mean_cooperative_reputation() {
                sum += m * c.population().cooperative as f64;
                n += c.population().cooperative;
            }
        }
        let expect = sum / n as f64;
        let got = cluster.mean_cooperative_reputation().unwrap();
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");

        // Histogram conserves the merged member count.
        let hist = cluster.reputation_histogram(10);
        assert_eq!(hist.count() as usize, merged.members);

        // Summed stats cover every community's ticks.
        assert_eq!(cluster.stats().ticks, 3 * 3_000);
    }

    #[test]
    fn summaries_line_up_with_members() {
        let mut cluster = CommunityCluster::build(small_builder(), 3, 9);
        cluster.run(1_500);
        let summaries = cluster.summaries();
        assert_eq!(summaries.len(), 3);
        for (s, c) in summaries.iter().zip(cluster.communities()) {
            assert_eq!(s.population, c.population());
            assert_eq!(s.success_rate, c.stats().success_rate());
        }
        assert_eq!(summaries[2].index, 2);
    }

    #[test]
    fn sampled_cluster_run_matches_solo_sampled_run() {
        let mut cluster = CommunityCluster::build(small_builder(), 2, 31);
        let series = cluster.run_sampled(2_000, 500, |c| {
            c.mean_cooperative_reputation().unwrap_or(0.0)
        });
        assert_eq!(series.len(), 2);
        let mut solo = small_builder().seed(seed_for_run(31, 0)).build();
        let solo_series = solo.run_sampled(2_000, 500, |c| {
            c.mean_cooperative_reputation().unwrap_or(0.0)
        });
        assert_eq!(series[0], solo_series);
    }

    #[test]
    fn empty_cluster_aggregates_are_neutral() {
        let cluster = CommunityCluster::build(small_builder(), 0, 1);
        assert!(cluster.is_empty());
        assert_eq!(cluster.population(), Population::default());
        assert_eq!(cluster.mean_cooperative_reputation(), None);
        assert_eq!(cluster.reputation_histogram(5).count(), 0);
    }
}

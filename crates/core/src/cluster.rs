//! Multi-community cluster, generic over the worker transport.
//!
//! A [`CommunityCluster`] owns K independent communities — separate
//! populations, engines and RNG streams, seeds derived via the
//! workspace's standard `seed_for_run(base_seed, i)` schedule — but
//! it does **not** own the simulations themselves: it describes them
//! as [`WorkerJob`]s and hands them to its [`Worker`]s, then merges
//! the decoded [`CommunityReport`]s. The merge — summed
//! [`Population`] counters, [`CommunityStats::accumulate`], the
//! population-weighted means, bucket-summed histograms — operates
//! purely on report fields, and every `f64` in a report is a
//! bit-exact copy of the community's own accumulator value (in
//! process trivially, across processes via the bit-exact
//! `replend-wire` floats). Merged output is therefore **byte-identical
//! regardless of transport**:
//!
//! * [`CommunityCluster::build`] — today's in-process path, the K
//!   communities stepped on the rayon pool;
//! * [`CommunityCluster::with_workers`] — any transport, e.g. a
//!   [`SubprocessWorker`](crate::worker::SubprocessWorker) fleet
//!   speaking the wire format with `replend worker` children
//!   (shared-nothing scale-out; the CLI's `run --workers N`).
//!
//! The cluster splits its index range into contiguous slices, one per
//! worker, runs the slices concurrently, and concatenates the reports
//! in worker order — which is index order, so the merge arithmetic
//! visits communities in the same order as a serial loop would.

use crate::community::CommunityBuilder;
use crate::stats::{CommunityStats, Population};
use crate::worker::{CommunityReport, InProcessWorker, Worker, WorkerError, WorkerJob};
use replend_sim::stats::Histogram;

impl replend_sim::cluster::ClusterNode for crate::community::Community {
    fn advance(&mut self, ticks: u64) {
        self.run(ticks);
    }
}

/// Everything a sweep or operator view needs from one member
/// community of a cluster.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CommunitySummary {
    /// Index in the cluster (seed schedule position).
    pub index: usize,
    /// Final population snapshot.
    pub population: Population,
    /// Mean reputation of cooperative members, if any.
    pub mean_coop_rep: Option<f64>,
    /// Mean reputation of uncooperative members, if any.
    pub mean_uncoop_rep: Option<f64>,
    /// §4.1 decision success rate, if any decision was taken.
    pub success_rate: Option<f64>,
}

/// K independent communities, executed by pluggable workers and
/// merged from their reports.
pub struct CommunityCluster<W: Worker = InProcessWorker> {
    /// The job template: full builder spec + the cluster's complete
    /// index range. Tick/sampling knobs are filled in by `run`.
    job: WorkerJob,
    workers: Vec<W>,
    reports: Vec<CommunityReport>,
}

impl CommunityCluster<InProcessWorker> {
    /// Builds the classic in-process cluster: `communities`
    /// communities from one configured builder, community `i` seeded
    /// with `seed_for_run(base_seed, i)` — the exact schedule of
    /// [`run_many_parallel`](replend_sim::runner::run_many_parallel),
    /// so a K-community cluster reproduces K independent seeded runs.
    pub fn build(builder: CommunityBuilder, communities: usize, base_seed: u64) -> Self {
        Self::with_workers(builder, communities, base_seed, vec![InProcessWorker])
    }
}

impl<W: Worker> CommunityCluster<W> {
    /// A cluster whose communities are distributed over `workers`
    /// (contiguous index slices, one per worker; workers beyond the
    /// community count stay idle).
    ///
    /// # Panics
    /// If `workers` is empty.
    pub fn with_workers(
        builder: CommunityBuilder,
        communities: usize,
        base_seed: u64,
        workers: Vec<W>,
    ) -> Self {
        assert!(!workers.is_empty(), "a cluster needs at least one worker");
        let indices: Vec<u64> = (0..communities as u64).collect();
        CommunityCluster {
            job: WorkerJob::from_builder(&builder, base_seed, indices),
            workers,
            reports: Vec::new(),
        }
    }

    /// Number of communities.
    pub fn len(&self) -> usize {
        self.job.indices.len()
    }

    /// True when the cluster holds no communities.
    pub fn is_empty(&self) -> bool {
        self.job.indices.is_empty()
    }

    /// Requests an `buckets`-bin member-reputation histogram in every
    /// report of subsequent runs (0 disables).
    pub fn set_histogram_buckets(&mut self, buckets: usize) {
        self.job.histogram_buckets = buckets as u64;
    }

    /// Requests a mean-cooperative-reputation sample every `interval`
    /// ticks in every report of subsequent runs (0 disables).
    pub fn set_sample_interval(&mut self, interval: u64) {
        self.job.sample_interval = interval;
    }

    /// Executes the cluster for `ticks` ticks **from construction
    /// state**: splits the index range over the workers, runs the
    /// slices concurrently (each worker builds its communities fresh
    /// from the job spec and seed schedule), and stores the reports
    /// in index order, replacing any previous run's. Calling `run`
    /// again does not continue the previous run — it re-executes the
    /// same deterministic simulations (same `ticks` ⇒ bit-identical
    /// reports).
    pub fn run(&mut self, ticks: u64) -> Result<(), WorkerError> {
        self.job.ticks = ticks;
        let jobs = self.job.split(self.workers.len());
        let mut outcomes: Vec<Option<Result<Vec<CommunityReport>, WorkerError>>> =
            (0..jobs.len()).map(|_| None).collect();
        if jobs.len() <= 1 {
            // Zero or one slice: no fan-out thread needed.
            for (job, slot) in jobs.iter().zip(&mut outcomes) {
                *slot = Some(self.workers[0].run(job));
            }
        } else {
            std::thread::scope(|scope| {
                for ((worker, job), slot) in self.workers.iter_mut().zip(&jobs).zip(&mut outcomes) {
                    scope.spawn(move || *slot = Some(worker.run(job)));
                }
            });
        }
        let mut reports = Vec::with_capacity(self.job.indices.len());
        for outcome in outcomes {
            reports.extend(outcome.expect("every slice was executed")?);
        }
        debug_assert!(
            reports
                .iter()
                .zip(&self.job.indices)
                .all(|(r, &i)| r.index == i),
            "workers must return reports in index order"
        );
        self.reports = reports;
        Ok(())
    }

    /// [`CommunityCluster::run`] with a sampling interval: every
    /// community records its mean cooperative reputation every
    /// `interval` ticks. Returns one aligned series per community;
    /// a `None` sample means the community had no cooperative members
    /// at that tick (not a `0.0` mean). Feed them to
    /// [`average_present`](replend_sim::series::average_present) for
    /// the paper's cross-run averages.
    pub fn run_sampled(
        &mut self,
        ticks: u64,
        interval: u64,
    ) -> Result<Vec<Vec<Option<f64>>>, WorkerError> {
        self.set_sample_interval(interval);
        self.run(ticks)?;
        Ok(self.series())
    }

    /// The per-community reports of the last run, in seed-schedule
    /// order (empty before the first run).
    pub fn reports(&self) -> &[CommunityReport] {
        &self.reports
    }

    /// The sampled series of the last run, one per community (empty
    /// unless a sample interval was set). Samples are `Option`: a
    /// cohort that was empty at a sample tick reports `None`, exactly
    /// as it crossed the wire.
    pub fn series(&self) -> Vec<Vec<Option<f64>>> {
        self.reports.iter().map(|r| r.series.clone()).collect()
    }

    /// Merged population counters over all communities.
    pub fn population(&self) -> Population {
        let mut total = Population::default();
        for r in &self.reports {
            // Exhaustive destructuring (no `..`): adding a Population
            // counter without merging it here is a compile error.
            let Population {
                members,
                cooperative,
                uncooperative,
                waiting,
                refused,
                flagged,
                departed,
            } = r.population;
            total.members += members;
            total.cooperative += cooperative;
            total.uncooperative += uncooperative;
            total.waiting += waiting;
            total.refused += refused;
            total.flagged += flagged;
            total.departed += departed;
        }
        total
    }

    /// Summed protocol counters over all communities.
    pub fn stats(&self) -> CommunityStats {
        let mut total = CommunityStats::default();
        for r in &self.reports {
            total.accumulate(&r.stats);
        }
        total
    }

    /// Mean reputation over every cooperative member in the cluster
    /// (each community's O(1) mean, weighted by its cooperative
    /// population). `None` when there are none.
    pub fn mean_cooperative_reputation(&self) -> Option<f64> {
        Self::weighted_mean(
            self.reports
                .iter()
                .map(|r| (r.mean_coop_rep, r.population.cooperative)),
        )
    }

    /// Mean reputation over every uncooperative member in the
    /// cluster. `None` when there are none.
    pub fn mean_uncooperative_reputation(&self) -> Option<f64> {
        Self::weighted_mean(
            self.reports
                .iter()
                .map(|r| (r.mean_uncoop_rep, r.population.uncooperative)),
        )
    }

    fn weighted_mean(parts: impl Iterator<Item = (Option<f64>, usize)>) -> Option<f64> {
        let (mut sum, mut n) = (0.0, 0usize);
        for (mean, count) in parts {
            if let Some(m) = mean {
                sum += m * count as f64;
                n += count;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Merged member-reputation histogram — bucket-wise sum of the
    /// per-community histograms requested via
    /// [`CommunityCluster::set_histogram_buckets`]. `None` when no
    /// histogram was requested.
    pub fn reputation_histogram(&self) -> Option<Histogram> {
        let buckets = self.job.histogram_buckets as usize;
        if buckets == 0 {
            return None;
        }
        let mut merged = Histogram::new(0.0, crate::peer_table::HIST_HI, buckets);
        for r in &self.reports {
            for (i, &count) in r.histogram.iter().enumerate() {
                merged.add_to_bucket(i, count);
            }
        }
        Some(merged)
    }

    /// Per-community summaries, in seed-schedule order.
    pub fn summaries(&self) -> Vec<CommunitySummary> {
        self.reports
            .iter()
            .map(|r| CommunitySummary {
                index: r.index as usize,
                population: r.population,
                mean_coop_rep: r.mean_coop_rep,
                mean_uncoop_rep: r.mean_uncoop_rep,
                success_rate: r.stats.success_rate(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::run_job;
    use replend_types::hash::seed_for_run;
    use replend_types::Table1;

    fn small_builder() -> CommunityBuilder {
        CommunityBuilder::new(
            Table1::paper_defaults()
                .with_num_init(40)
                .with_arrival_rate(0.05)
                .with_num_trans(5_000),
        )
    }

    #[test]
    fn cluster_reproduces_independent_runs_exactly() {
        let mut cluster = CommunityCluster::build(small_builder(), 4, 77);
        cluster.run(2_000).unwrap();
        for (i, r) in cluster.reports().iter().enumerate() {
            let mut solo = small_builder().seed(seed_for_run(77, i as u64)).build();
            solo.run(2_000);
            assert_eq!(r.stats, *solo.stats(), "community {i}");
            assert_eq!(r.population, solo.population());
            assert_eq!(
                r.mean_coop_rep.map(f64::to_bits),
                solo.mean_cooperative_reputation().map(f64::to_bits),
                "community {i} mean must be bit-identical to its solo run"
            );
        }
    }

    #[test]
    fn merged_aggregates_are_reductions_of_members() {
        let mut cluster = CommunityCluster::build(small_builder(), 3, 5);
        cluster.set_histogram_buckets(10);
        cluster.run(3_000).unwrap();
        let merged = cluster.population();
        let by_hand: usize = cluster.reports().iter().map(|r| r.population.members).sum();
        assert_eq!(merged.members, by_hand);
        assert_eq!(
            merged.members,
            merged.cooperative + merged.uncooperative,
            "behaviour split covers the membership"
        );

        // Weighted mean equals the flat mean over all members.
        let mut sum = 0.0;
        let mut n = 0usize;
        for r in cluster.reports() {
            if let Some(m) = r.mean_coop_rep {
                sum += m * r.population.cooperative as f64;
                n += r.population.cooperative;
            }
        }
        let expect = sum / n as f64;
        let got = cluster.mean_cooperative_reputation().unwrap();
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");

        // Histogram conserves the merged member count.
        let hist = cluster.reputation_histogram().unwrap();
        assert_eq!(hist.count() as usize, merged.members);

        // Summed stats cover every community's ticks.
        assert_eq!(cluster.stats().ticks, 3 * 3_000);
    }

    #[test]
    fn summaries_line_up_with_reports() {
        let mut cluster = CommunityCluster::build(small_builder(), 3, 9);
        cluster.run(1_500).unwrap();
        let summaries = cluster.summaries();
        assert_eq!(summaries.len(), 3);
        for (s, r) in summaries.iter().zip(cluster.reports()) {
            assert_eq!(s.population, r.population);
            assert_eq!(s.success_rate, r.stats.success_rate());
        }
        assert_eq!(summaries[2].index, 2);
    }

    #[test]
    fn sampled_cluster_run_matches_solo_sampled_run() {
        let mut cluster = CommunityCluster::build(small_builder(), 2, 31);
        let series = cluster.run_sampled(2_000, 500).unwrap();
        assert_eq!(series.len(), 2);
        let mut solo = small_builder().seed(seed_for_run(31, 0)).build();
        let solo_series = solo.run_sampled_with(2_000, 500, |c| c.mean_cooperative_reputation());
        assert_eq!(series[0], solo_series);
    }

    #[test]
    fn empty_cluster_aggregates_are_neutral() {
        let mut cluster = CommunityCluster::build(small_builder(), 0, 1);
        assert!(cluster.is_empty());
        cluster.set_histogram_buckets(5);
        cluster.run(100).unwrap();
        assert_eq!(cluster.population(), Population::default());
        assert_eq!(cluster.mean_cooperative_reputation(), None);
        assert_eq!(cluster.reputation_histogram().unwrap().count(), 0);
    }

    /// The empty-cohort regression (ISSUE 6): a community with no
    /// uncooperative members must merge as "no mean" — never as a
    /// fabricated `0.0` — and the merge must be bit-identical whether
    /// the reports stayed in process or crossed the wire.
    #[test]
    fn empty_cohort_means_merge_exactly_across_transports() {
        let mut config = Table1::paper_defaults()
            .with_num_init(30)
            .with_arrival_rate(0.05)
            .with_num_trans(5_000);
        // No uncooperative entrants: that cohort stays empty in every
        // community for the whole run.
        config.sim.f_uncoop = 0.0;
        let builder = || CommunityBuilder::new(config);

        let mut in_process = CommunityCluster::build(builder(), 3, 21);
        let in_process_series = in_process.run_sampled(1_500, 500).unwrap();
        let mut wired = CommunityCluster::with_workers(builder(), 3, 21, vec![EncodingWorker]);
        let wired_series = wired.run_sampled(1_500, 500).unwrap();

        for r in in_process.reports() {
            assert_eq!(
                r.mean_uncoop_rep, None,
                "an empty cohort reports no mean, not 0.0"
            );
        }
        assert_eq!(in_process.mean_uncooperative_reputation(), None);
        assert_eq!(wired.mean_uncooperative_reputation(), None);
        // The dense cohort's weighted mean is bit-identical through
        // the wire, and so is every sampled series value.
        assert_eq!(
            in_process.mean_cooperative_reputation().map(f64::to_bits),
            wired.mean_cooperative_reputation().map(f64::to_bits)
        );
        assert_eq!(in_process_series, wired_series);

        // An `Option` series with absent samples survives a wire
        // round trip exactly (the encoding is a tagged Option, not a
        // 0.0 substitute).
        let mut report = in_process.reports()[0].clone();
        report.series = vec![Some(0.25), None, Some(0.0)];
        let bytes = replend_wire::to_bytes(&report).unwrap();
        let back: CommunityReport = replend_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, report);
    }

    /// A transport that proxies [`run_job`] through an extra
    /// encode/decode of every message — the in-memory twin of the
    /// subprocess path, proving the merge is transport-independent
    /// without spawning processes.
    struct EncodingWorker;

    impl Worker for EncodingWorker {
        fn run(&mut self, job: &WorkerJob) -> Result<Vec<CommunityReport>, WorkerError> {
            let job_bytes = replend_wire::to_bytes(job)?;
            let decoded: WorkerJob = replend_wire::from_bytes(&job_bytes)?;
            run_job(&decoded)
                .into_iter()
                .map(|r| Ok(replend_wire::from_bytes(&replend_wire::to_bytes(&r)?)?))
                .collect()
        }
    }

    #[test]
    fn wire_transport_is_byte_identical_to_in_process() {
        let run = |workers: usize| -> (Population, CommunityStats, Vec<u64>, Option<u64>) {
            let mut cluster = if workers == 0 {
                CommunityCluster::build(small_builder(), 5, 13)
            } else {
                CommunityCluster::with_workers(
                    small_builder(),
                    5,
                    13,
                    (0..workers).map(|_| InProcessWorker).collect(),
                )
            };
            cluster.set_histogram_buckets(10);
            cluster.set_sample_interval(500);
            cluster.run(2_000).unwrap();
            (
                cluster.population(),
                cluster.stats(),
                cluster.reputation_histogram().unwrap().buckets().to_vec(),
                cluster.mean_cooperative_reputation().map(f64::to_bits),
            )
        };
        let baseline = run(0);
        // More workers than one, and more workers than communities.
        assert_eq!(run(2), baseline);
        assert_eq!(run(7), baseline);

        // And through a full encode/decode of jobs and reports.
        let mut wired =
            CommunityCluster::with_workers(small_builder(), 5, 13, vec![EncodingWorker]);
        wired.set_histogram_buckets(10);
        wired.set_sample_interval(500);
        wired.run(2_000).unwrap();
        assert_eq!(wired.population(), baseline.0);
        assert_eq!(wired.stats(), baseline.1);
        assert_eq!(
            wired.reputation_histogram().unwrap().buckets().to_vec(),
            baseline.2
        );
        assert_eq!(
            wired.mean_cooperative_reputation().map(f64::to_bits),
            baseline.3,
            "the merged mean must survive the wire bit-exactly"
        );
    }
}

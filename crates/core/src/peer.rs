//! Runtime peer records.

use replend_types::{PeerId, PeerProfile, SimTime};
use serde::{Deserialize, Serialize};

/// Why an arrival was denied entry.
///
/// The first two reasons are the two refusal series plotted in
/// Figures 4 and 6 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RefusalReason {
    /// The chosen introducer was willing but held less than
    /// `minIntro` reputation ("Entry Refused due to Introducer
    /// Reputation").
    InsufficientIntroducerReputation,
    /// A selective introducer declined the (uncooperative) applicant
    /// ("Entry Refused to Uncooperative Peer").
    SelectiveRefusal,
    /// No member could be chosen as a potential introducer (empty
    /// community — only possible in degenerate configurations).
    NoIntroducerAvailable,
    /// The peer was caught soliciting two simultaneous introductions
    /// (§2's attack) and flagged malicious.
    DuplicateIntroduction,
}

/// Admission status of a peer known to the community.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PeerStatus {
    /// Waiting out the introduction period `T`.
    Waiting,
    /// Admitted member of the community.
    Member,
    /// Turned away; terminal.
    Refused(RefusalReason),
    /// Flagged malicious by score managers (duplicate-introduction
    /// attack); reputation zeroed, terminal.
    Flagged,
    /// Left the community (departure churn extension); terminal.
    Departed,
}

impl PeerStatus {
    /// True for admitted members.
    #[inline]
    pub const fn is_member(self) -> bool {
        matches!(self, PeerStatus::Member)
    }

    /// True while awaiting the introduction decision.
    #[inline]
    pub const fn is_waiting(self) -> bool {
        matches!(self, PeerStatus::Waiting)
    }
}

/// Everything the community tracks about one peer.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PeerRecord {
    /// Identity.
    pub id: PeerId,
    /// Static behaviour profile.
    pub profile: PeerProfile,
    /// Admission status.
    pub status: PeerStatus,
    /// Arrival time (request for introduction).
    pub arrived_at: SimTime,
    /// Admission time, once a member.
    pub admitted_at: Option<SimTime>,
    /// The member who introduced this peer, when admitted by lending.
    pub introducer: Option<PeerId>,
    /// Transactions remaining until the performance audit; `None`
    /// when not subject to an audit (initial peers, already audited,
    /// or non-lending policies).
    pub audit_remaining: Option<u32>,
    /// Total transactions this peer took part in.
    pub transactions: u64,
}

impl PeerRecord {
    /// A founding member (present at time zero, no audit).
    pub fn founding(id: PeerId, profile: PeerProfile) -> Self {
        PeerRecord {
            id,
            profile,
            status: PeerStatus::Member,
            arrived_at: SimTime::ZERO,
            admitted_at: Some(SimTime::ZERO),
            introducer: None,
            audit_remaining: None,
            transactions: 0,
        }
    }

    /// An arrival awaiting its introduction decision.
    pub fn arriving(id: PeerId, profile: PeerProfile, now: SimTime) -> Self {
        PeerRecord {
            id,
            profile,
            status: PeerStatus::Waiting,
            arrived_at: now,
            admitted_at: None,
            introducer: None,
            audit_remaining: None,
            transactions: 0,
        }
    }

    /// Marks the peer admitted at `now`, introduced by `introducer`
    /// (when applicable) and subject to an audit after `audit_trans`
    /// transactions (when applicable).
    pub fn admit(&mut self, now: SimTime, introducer: Option<PeerId>, audit_trans: Option<u32>) {
        self.status = PeerStatus::Member;
        self.admitted_at = Some(now);
        self.introducer = introducer;
        self.audit_remaining = audit_trans;
    }

    /// Records participation in one transaction; returns `true` when
    /// this transaction triggers the audit.
    pub fn record_transaction(&mut self) -> bool {
        self.transactions += 1;
        match self.audit_remaining.as_mut() {
            Some(n) => {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    self.audit_remaining = None;
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replend_types::IntroducerPolicy;

    fn profile() -> PeerProfile {
        PeerProfile::cooperative(IntroducerPolicy::Naive)
    }

    #[test]
    fn founding_members_are_admitted_without_audit() {
        let r = PeerRecord::founding(PeerId(1), profile());
        assert!(r.status.is_member());
        assert_eq!(r.admitted_at, Some(SimTime::ZERO));
        assert_eq!(r.audit_remaining, None);
        assert_eq!(r.introducer, None);
    }

    #[test]
    fn arrival_waits() {
        let r = PeerRecord::arriving(PeerId(2), profile(), SimTime(10));
        assert!(r.status.is_waiting());
        assert!(!r.status.is_member());
        assert_eq!(r.arrived_at, SimTime(10));
    }

    #[test]
    fn admit_sets_audit_and_introducer() {
        let mut r = PeerRecord::arriving(PeerId(2), profile(), SimTime(10));
        r.admit(SimTime(1010), Some(PeerId(7)), Some(20));
        assert!(r.status.is_member());
        assert_eq!(r.admitted_at, Some(SimTime(1010)));
        assert_eq!(r.introducer, Some(PeerId(7)));
        assert_eq!(r.audit_remaining, Some(20));
    }

    #[test]
    fn audit_fires_exactly_at_audit_trans() {
        let mut r = PeerRecord::arriving(PeerId(2), profile(), SimTime(0));
        r.admit(SimTime(1), Some(PeerId(7)), Some(3));
        assert!(!r.record_transaction());
        assert!(!r.record_transaction());
        assert!(r.record_transaction(), "third transaction triggers audit");
        assert_eq!(r.audit_remaining, None);
        assert!(!r.record_transaction(), "audit fires only once");
        assert_eq!(r.transactions, 4);
    }

    #[test]
    fn members_without_audit_just_count() {
        let mut r = PeerRecord::founding(PeerId(1), profile());
        assert!(!r.record_transaction());
        assert_eq!(r.transactions, 1);
    }

    #[test]
    fn status_predicates() {
        assert!(PeerStatus::Member.is_member());
        assert!(PeerStatus::Waiting.is_waiting());
        assert!(!PeerStatus::Refused(RefusalReason::SelectiveRefusal).is_member());
        assert!(!PeerStatus::Flagged.is_member());
        assert!(!PeerStatus::Departed.is_member());
    }
}

//! The serve layer: an online, concurrently-readable reputation
//! service over the arena engine, with an append-only write-ahead
//! feedback journal as its durable source of truth.
//!
//! Everything before this module is batch-simulation-shaped — one
//! owner mutates an engine while readers wait their turn. A deployed
//! reputation store is used the other way around: a heavy stream of
//! `reputation()` / status probes from admission control, punctuated
//! by feedback ingest. [`ReputationService`] serves that shape:
//!
//! * **Wait-free reads.** Subjects live in a [`ConcurrentEngine`] —
//!   a lock-per-partition facade whose hot read fields are published
//!   through an epoch-versioned snapshot slab — so `reputation()` and
//!   `status()` probes take **no lock at all**: they read the slab,
//!   validate the partition epoch, and retry only if a batch
//!   published mid-read. Every individual subject is linearizable and
//!   every read observes exactly a pre-batch or post-batch state
//!   (never a mix), bit-identical to what the locked path would
//!   return; cross-subject sweeps are still not a consistent global
//!   snapshot (see the `replend_rocq::concurrent` module docs).
//! * **Status tiers.** [`StatusPolicy`] maps a subject's reputation
//!   *and* its applied-report count to an operational
//!   [`SubjectStatus`]: `Whitelisted` / `Throttled` / `Banned`. The
//!   interaction floor keeps a newcomer with two low reports from
//!   being banned on no evidence — below `min_observations` the
//!   policy stays permissive and lets the lending protocol's own
//!   stake bear the risk. The common whitelist probe is served from a
//!   per-subject tier memo keyed by the partition epoch: a repeat
//!   `status()` at an unchanged epoch is a single load + compare.
//! * **Write-ahead journal.** With a journal attached, every mutation
//!   is appended to an append-only log of length-prefixed
//!   `replend-wire` frames *before* it touches the engine. The
//!   [`SyncPolicy`] picks the durability point: `Always` flushes
//!   every record before applying it (the strict WAL contract);
//!   `Batch(N)` group-commits — frames buffer in memory and hit the
//!   file every `N` appends, trading up to `N - 1` applied-but-
//!   unflushed operations on a crash for fewer syscalls, while the
//!   byte stream (and therefore replay state) stays identical. A
//!   restarted service replays the log through the same apply path
//!   and reaches byte-identical engine state — pinned by the
//!   determinism suite. A torn final frame is truncated on open;
//!   under group commit a torn tail can only start at a flushed-batch
//!   boundary, so the truncation is still exact.
//! * **Checkpointed restarts.** Replaying a long-lived journal from
//!   the beginning makes restart time proportional to service
//!   *lifetime*; [`ReputationService::checkpoint`] bounds it by
//!   service *size*. A checkpoint atomically persists the full engine
//!   state (every partition exported and wire-encoded in parallel,
//!   written to a temp file, fsynced, renamed over the previous
//!   checkpoint), after which the journal is truncated to empty and
//!   re-stamped with the next **generation seed** — so
//!   [`ReputationService::open`] restores the latest checkpoint and
//!   replays only the short journal suffix written since. The
//!   generation salt is the crash-safety hinge: a crash between the
//!   checkpoint rename and the journal truncation leaves a journal
//!   whose every record is already inside the checkpoint, and its
//!   stale-generation seed makes that detectable — replay discards it
//!   instead of double-applying. A torn or corrupt checkpoint file
//!   fails its decode gates and `open` falls back to full journal
//!   replay; a post-compaction journal whose checkpoint is missing is
//!   a **hard error**, never a silent partial restore. Restored state
//!   is bit-identical to a from-scratch replay — pinned by the
//!   checkpoint equivalence suite.
//!
//! The one-writer/many-readers split is by construction: mutators
//! serialize on the journal lock (a WAL has one tail), while readers
//! bypass locks entirely on the snapshot slab. [`run_ingest_workload`]
//! is the service loop the `replend serve` subcommand and the service
//! bench both drive: a deterministic synthetic ingest stream with
//! reader threads hammering the read path the whole time.

use rayon::prelude::*;
use replend_rocq::concurrent::ConcurrentEngine;
use replend_rocq::inspect::SubjectSnapshot;
use replend_rocq::state::PartitionCheckpoint;
use replend_rocq::RocqParams;
use replend_types::hash::{salted, splitmix64};
use replend_types::{Feedback, PeerId, Reputation};
pub use replend_wire::SyncPolicy;
use replend_wire::{
    decode_checkpoint, encode_checkpoint, JournalError, JournalReader, JournalWriter, WireError,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The operational tier admission control acts on: serve the request,
/// serve it rate-limited, or refuse it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubjectStatus {
    /// Full service: reputable, or not yet enough evidence to judge.
    Whitelisted,
    /// Degraded service: reputation below the throttle line.
    Throttled,
    /// Refused: reputation below the ban line with real evidence.
    Banned,
}

impl SubjectStatus {
    /// Stable lowercase name for reports and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            SubjectStatus::Whitelisted => "whitelisted",
            SubjectStatus::Throttled => "throttled",
            SubjectStatus::Banned => "banned",
        }
    }

    /// Dense tier code for the engine-side status memo (must stay
    /// `< 4`: the memo packs it into two bits).
    const fn tier(self) -> u8 {
        match self {
            SubjectStatus::Whitelisted => 0,
            SubjectStatus::Throttled => 1,
            SubjectStatus::Banned => 2,
        }
    }

    const fn from_tier(tier: u8) -> SubjectStatus {
        match tier {
            0 => SubjectStatus::Whitelisted,
            1 => SubjectStatus::Throttled,
            _ => SubjectStatus::Banned,
        }
    }
}

impl fmt::Display for SubjectStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Maps (reputation, applied-report count) to a [`SubjectStatus`].
///
/// Tiering on reputation alone would ban every newcomer the first
/// time a liar reported on them; the `min_observations` evidence
/// floor (cf. the `ReputationBox` admission tiers this layer is
/// modeled on) keeps the policy permissive until the score managers
/// have actually heard enough.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatusPolicy {
    /// Applied reports required before a subject can be throttled or
    /// banned. Below this the status is always `Whitelisted`.
    pub min_observations: u64,
    /// Reputations strictly below this are at most `Throttled`.
    pub throttle_below: f64,
    /// Reputations strictly below this are `Banned`.
    pub ban_below: f64,
}

impl Default for StatusPolicy {
    fn default() -> Self {
        StatusPolicy {
            min_observations: 10,
            throttle_below: 0.5,
            ban_below: 0.2,
        }
    }
}

impl StatusPolicy {
    /// The tier for a subject with the given aggregate reputation and
    /// applied-report count.
    pub fn classify(&self, reputation: Reputation, observations: u64) -> SubjectStatus {
        if observations < self.min_observations {
            return SubjectStatus::Whitelisted;
        }
        let r = reputation.value();
        if r < self.ban_below {
            SubjectStatus::Banned
        } else if r < self.throttle_below {
            SubjectStatus::Throttled
        } else {
            SubjectStatus::Whitelisted
        }
    }

    /// Checks the thresholds are ordered and in range.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.ban_below) || !(0.0..=1.0).contains(&self.throttle_below) {
            return Err("status thresholds must lie in [0, 1]".into());
        }
        if self.ban_below > self.throttle_below {
            return Err(format!(
                "ban_below ({}) must not exceed throttle_below ({})",
                self.ban_below, self.throttle_below
            ));
        }
        Ok(())
    }
}

/// Static configuration of a [`ReputationService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// ROCQ parameters for every partition engine. The crash model
    /// defaults to off (`crash_prob = 0`): a service node does not
    /// simulate its own replica crashes.
    pub params: RocqParams,
    /// Score-manager replicas per subject.
    pub num_sm: usize,
    /// Lock partitions (independent read/write domains).
    pub partitions: usize,
    /// Engine seed; also stamped into every journal frame so a log
    /// cannot be replayed into a differently-seeded service.
    pub seed: u64,
    /// The status-tier thresholds.
    pub policy: StatusPolicy,
    /// When journal appends reach the file: every record
    /// ([`SyncPolicy::Always`], the default) or group-committed in
    /// batches ([`SyncPolicy::Batch`]). Ignored by in-memory services.
    pub journal_sync: SyncPolicy,
    /// Auto-checkpoint cadence: `Some(n)` takes a checkpoint (and
    /// compacts the journal) after every `n` journalled mutations;
    /// `None` (the default) checkpoints only on explicit
    /// [`ReputationService::checkpoint`] calls. Ignored by in-memory
    /// services.
    pub checkpoint_every: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            params: RocqParams {
                crash_prob: 0.0,
                ..RocqParams::default()
            },
            // Table 1's `numSM` paper default.
            num_sm: 6,
            partitions: 8,
            seed: 0,
            policy: StatusPolicy::default(),
            journal_sync: SyncPolicy::Always,
            checkpoint_every: None,
        }
    }
}

/// One journalled mutation. The journal is the write-ahead log of
/// *operations*, not of resulting states: replaying the ops through
/// the same engine code is what makes restart byte-identical, and it
/// keeps each frame small and version-gated by `replend-wire`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JournalOp {
    /// `register_peer(peer, initial)`.
    Register { peer: PeerId, initial: f64 },
    /// `remove_peer(peer)`.
    Remove { peer: PeerId },
    /// `report_batch(&batch)`.
    Batch { batch: Vec<Feedback> },
    /// `credit(subject, amount)`.
    Credit { subject: PeerId, amount: f64 },
    /// `debit(subject, amount)`.
    Debit { subject: PeerId, amount: f64 },
    /// `register_batch(&batch)` — the bulk-registration fast path:
    /// one journal record and one snapshot-epoch window per partition
    /// for the whole batch, instead of a frame + flush + epoch bump
    /// per peer. Appended as the **trailing** enum variant so
    /// journals written before this op existed still decode (the wire
    /// enum policy: trailing additions are compatible).
    RegisterBatch { batch: Vec<(PeerId, f64)> },
}

/// Serve-layer failures: journal I/O, journal decode/replay, and
/// checkpoint problems that must not be silently papered over.
#[derive(Debug)]
pub enum ServeError {
    /// Appending to or replaying the journal failed.
    Journal(JournalError),
    /// Opening, truncating or seeking the journal file failed.
    Io(io::Error),
    /// A checkpoint failure that has no safe fallback: encoding the
    /// state failed, the checkpoint belongs to a different service
    /// (seed mismatch), its shape disagrees with the config, or the
    /// journal is a post-compaction suffix whose checkpoint is
    /// missing or unreadable. (A merely torn/corrupt checkpoint is
    /// *not* an error — `open` falls back to full journal replay.)
    Checkpoint(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Journal(e) => write!(f, "journal: {e}"),
            ServeError::Io(e) => write!(f, "journal file: {e}"),
            ServeError::Checkpoint(m) => write!(f, "checkpoint: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<JournalError> for ServeError {
    fn from(e: JournalError) -> Self {
        ServeError::Journal(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// What [`ReputationService::open`] found in an existing journal (and
/// checkpoint, if one was restored).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Operations replayed from the journal's intact prefix — after a
    /// checkpoint restore this is only the post-checkpoint suffix.
    pub records: u64,
    /// Bytes of intact journal retained.
    pub bytes: u64,
    /// True when a torn final frame was truncated away.
    pub truncated_torn_tail: bool,
    /// Operations whose effects arrived pre-applied inside the
    /// restored checkpoint (0 when no checkpoint was restored).
    pub replayed_from_checkpoint: u64,
    /// Journal generation of the restored checkpoint; 0 means the
    /// engine was rebuilt by full journal replay (checkpoint
    /// generations start at 1).
    pub checkpoint_generation: u64,
}

impl ReplaySummary {
    /// Operations replayed one-by-one from the journal — the
    /// complement of [`ReplaySummary::replayed_from_checkpoint`].
    pub fn replayed_from_journal(&self) -> u64 {
        self.records
    }

    /// True when the engine was restored from a checkpoint rather
    /// than rebuilt from the journal alone.
    pub fn restored_from_checkpoint(&self) -> bool {
        self.checkpoint_generation > 0
    }
}

/// What one [`ReputationService::checkpoint`] call persisted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The journal generation that *follows* this checkpoint (the
    /// checkpoint file stores the same number).
    pub generation: u64,
    /// Cumulative journalled operations captured by the checkpoint.
    pub ops: u64,
    /// Encoded checkpoint size on disk.
    pub bytes: u64,
}

/// The checkpoint file payload, wrapped by
/// [`replend_wire::encode_checkpoint`] (magic + versioned, seed-
/// stamped envelope). Partitions ride as independently wire-encoded
/// blobs so both encode and decode fan out over the thread pool.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct CheckpointDoc {
    /// Journal generation after this checkpoint; always ≥ 1.
    generation: u64,
    /// Cumulative journalled operations the state includes.
    ops: u64,
    /// The status policy in force when the checkpoint was taken —
    /// recorded for introspection; the live policy always comes from
    /// the opening config (tier thresholds are read-time
    /// classification, not engine state).
    policy: StatusPolicy,
    /// One wire-encoded [`PartitionCheckpoint`] per engine partition.
    partitions: Vec<Vec<u8>>,
}

/// The seed stamped into journal records of generation `generation`.
///
/// Generation 0 (the pre-first-checkpoint journal) uses the service
/// seed itself, so journals written before checkpoints existed replay
/// unchanged. Each compaction advances the generation, and the salted
/// stamp is what makes the compaction crash-window safe: a journal
/// left behind by a crash between checkpoint rename and journal
/// truncation carries the *previous* generation's seed, fails the
/// seed gate, and is discarded — every record in it is already inside
/// the checkpoint.
pub fn journal_seed(seed: u64, generation: u64) -> u64 {
    if generation == 0 {
        seed
    } else {
        splitmix64(salted(seed, generation))
    }
}

/// The checkpoint file that pairs with the journal at `journal`:
/// the same path with `.ckpt` appended.
pub fn checkpoint_path(journal: &Path) -> PathBuf {
    let mut os = journal.as_os_str().to_os_string();
    os.push(".ckpt");
    PathBuf::from(os)
}

/// In-flight checkpoint writes go to this sibling path and are
/// renamed into place only when fully synced; a crash mid-write
/// leaves a `.tmp` orphan that is simply ignored.
fn checkpoint_tmp_path(checkpoint: &Path) -> PathBuf {
    let mut os = checkpoint.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Fsyncs the directory holding `path`, making a just-renamed file's
/// directory entry durable.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            File::open(parent)?.sync_all()?;
        }
    }
    Ok(())
}

/// The journal tail guarded by the service's write mutex: the writer
/// plus the checkpoint bookkeeping that must move atomically with it.
struct JournalState {
    writer: JournalWriter<File>,
    /// Current journal generation (0 until the first checkpoint).
    generation: u64,
    /// Every journalled op since the service's birth — checkpointed
    /// ops included. Stored in the next checkpoint as its `ops`.
    ops_total: u64,
    /// Ops appended to the current journal generation; drives the
    /// `checkpoint_every` trigger.
    since_checkpoint: u64,
}

/// Where a journalled service checkpoints to.
struct CheckpointSpec {
    path: PathBuf,
    every: Option<u64>,
}

/// The online reputation service. Mutators take `&self` and serialize
/// on the journal lock; reads go straight to the concurrent engine's
/// lock-free snapshot slabs, so the service can be shared across
/// reader threads (`&ReputationService` is `Send + Sync`).
pub struct ReputationService {
    engine: ConcurrentEngine,
    policy: StatusPolicy,
    seed: u64,
    /// `None` for an in-memory (journal-less) service. The mutex is
    /// the WAL tail: it orders append *and* apply, so journal order
    /// is exactly apply order — the replay contract. Checkpointing
    /// holds the same lock, so a checkpoint is a clean cut of the op
    /// stream.
    journal: Option<Mutex<JournalState>>,
    /// Checkpoint destination and cadence; `Some` exactly when
    /// `journal` is.
    checkpoint: Option<CheckpointSpec>,
}

impl ReputationService {
    /// An in-memory service: no durability, same semantics otherwise.
    pub fn in_memory(config: ServeConfig) -> Self {
        ReputationService {
            engine: ConcurrentEngine::new(
                config.params,
                config.num_sm,
                config.partitions,
                config.seed,
            ),
            policy: config.policy,
            seed: config.seed,
            journal: None,
            checkpoint: None,
        }
    }

    /// Opens the service state rooted at the journal `path`: restores
    /// the latest durable checkpoint (at [`checkpoint_path`]) when
    /// one is present and intact, replays the journal — the full log
    /// without a checkpoint, only the post-checkpoint suffix with one
    /// — truncates a torn tail if the last run crashed mid-append,
    /// and attaches the file as the service's write-ahead log.
    ///
    /// The checkpoint fallback ladder, in order:
    ///
    /// 1. intact checkpoint → restore it, replay the journal suffix;
    /// 2. checkpoint absent, torn, or corrupt (bad magic, short file,
    ///    failed decode, invalid state) → full generation-0 journal
    ///    replay;
    /// 3. journal seed says it is a post-compaction suffix but no
    ///    usable checkpoint exists → [`ServeError::Checkpoint`]. A
    ///    partial state must never be served as if it were whole.
    ///
    /// A checkpoint whose seed is not this service's is rejected with
    /// a hard error (rung 3, not rung 2): it is some *other*
    /// service's state, and "fall back" could silently shadow it.
    ///
    /// Both restore and replay run through the same apply path live
    /// mutations use, so the rebuilt engine is byte-identical to the
    /// pre-restart one — the determinism suite pins this.
    pub fn open(config: ServeConfig, path: &Path) -> Result<(Self, ReplaySummary), ServeError> {
        let ckpt_path = checkpoint_path(path);
        let mut summary = ReplaySummary::default();
        let generation;
        let mut service = match Self::load_checkpoint(&ckpt_path, &config)? {
            Some((engine, doc_generation, ops)) => {
                generation = doc_generation;
                summary.replayed_from_checkpoint = ops;
                summary.checkpoint_generation = doc_generation;
                ReputationService {
                    engine,
                    policy: config.policy,
                    seed: config.seed,
                    journal: None,
                    checkpoint: None,
                }
            }
            None => {
                generation = 0;
                Self::in_memory(config)
            }
        };

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;

        let stamp = journal_seed(config.seed, generation);
        let mut reader = JournalReader::new(BufReader::new(&mut file), stamp);
        // Set when the journal predates the checkpoint (crash between
        // checkpoint rename and journal truncation): every record in
        // it is already inside the restored state, so the whole file
        // is dropped and the interrupted compaction completed.
        let mut stale = false;
        loop {
            match reader.next::<JournalOp>() {
                Ok(Some(op)) => {
                    service.apply(&op);
                    summary.records += 1;
                }
                Ok(None) => break,
                Err(JournalError::SeedMismatch { found, .. })
                    if generation > 0
                        && summary.records == 0
                        && found == journal_seed(config.seed, generation - 1) =>
                {
                    stale = true;
                    break;
                }
                Err(JournalError::SeedMismatch { expected, found }) if generation == 0 => {
                    return Err(ServeError::Checkpoint(format!(
                        "journal records carry seed {found:#018x} instead of the \
                         generation-0 seed {expected:#018x}: the journal is a \
                         post-compaction suffix but no usable checkpoint was found \
                         at {}; refusing to replay a partial history",
                        ckpt_path.display()
                    )));
                }
                Err(e) => return Err(e.into()),
            }
        }
        summary.bytes = if stale { 0 } else { reader.consumed() };
        summary.truncated_torn_tail = !stale && reader.torn_tail();
        if stale || summary.truncated_torn_tail {
            // Torn tail: the op was journalled but never applied
            // (append happens first and flushes); dropping it loses
            // nothing the engine ever saw. Stale generation: finish
            // the truncation the crashed run never got to.
            file.set_len(summary.bytes)?;
        }
        file.seek(SeekFrom::Start(summary.bytes))?;
        if stale {
            file.sync_all()?;
        }
        service.journal = Some(Mutex::new(JournalState {
            writer: JournalWriter::with_policy(file, stamp, config.journal_sync),
            generation,
            ops_total: summary.replayed_from_checkpoint + summary.records,
            since_checkpoint: summary.records,
        }));
        service.checkpoint = Some(CheckpointSpec {
            path: ckpt_path,
            every: config.checkpoint_every,
        });
        Ok((service, summary))
    }

    /// Reads and validates the checkpoint at `path`. `Ok(None)` means
    /// "no usable checkpoint, full replay is safe" (absent, torn, or
    /// corrupt file); hard errors are reserved for checkpoints that
    /// must not be silently ignored (wrong seed, wrong shape, wrong
    /// protocol version).
    #[allow(clippy::type_complexity)]
    fn load_checkpoint(
        path: &Path,
        config: &ServeConfig,
    ) -> Result<Option<(ConcurrentEngine, u64, u64)>, ServeError> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let (seed, doc) = match decode_checkpoint::<CheckpointDoc>(&bytes) {
            Ok(decoded) => decoded,
            Err(WireError::VersionMismatch { expected, found }) => {
                return Err(ServeError::Checkpoint(format!(
                    "checkpoint {} was written by wire protocol v{found}, this build \
                     speaks v{expected}",
                    path.display()
                )));
            }
            // Torn or corrupt bytes: bad magic, short file, trailing
            // garbage, failed payload decode. The journal still holds
            // the full generation-0 history in this situation.
            Err(_) => return Ok(None),
        };
        if seed != config.seed {
            return Err(ServeError::Checkpoint(format!(
                "checkpoint {} carries seed {seed:#018x}, service uses {:#018x}: \
                 this is a different service's state",
                path.display(),
                config.seed
            )));
        }
        if doc.generation == 0 {
            // Generations start at 1; a zero can only be corruption
            // that happened to decode.
            return Ok(None);
        }
        if doc.partitions.len() != config.partitions {
            return Err(ServeError::Checkpoint(format!(
                "checkpoint {} holds {} partition(s), config asks for {}: partition \
                 count cannot change across a restore",
                path.display(),
                doc.partitions.len(),
                config.partitions
            )));
        }
        let decoded: Vec<Result<PartitionCheckpoint, WireError>> = doc
            .partitions
            .par_iter()
            .map(|blob| replend_wire::from_bytes(blob))
            .collect();
        let mut parts = Vec::with_capacity(decoded.len());
        for part in decoded {
            match part {
                Ok(part) => parts.push(part),
                Err(_) => return Ok(None),
            }
        }
        match ConcurrentEngine::import_partitions(&parts) {
            Ok(engine) => Ok(Some((engine, doc.generation, doc.ops))),
            // Well-framed but semantically invalid state — treat as
            // corrupt and fall back.
            Err(_) => Ok(None),
        }
    }

    /// The engine seed (and journal seed stamp).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The status-tier thresholds in force.
    pub fn policy(&self) -> StatusPolicy {
        self.policy
    }

    /// The underlying concurrent engine, for read fan-out.
    pub fn engine(&self) -> &ConcurrentEngine {
        &self.engine
    }

    /// True when mutations are journalled.
    pub fn journalled(&self) -> bool {
        self.journal.is_some()
    }

    fn apply(&self, op: &JournalOp) {
        match op {
            JournalOp::Register { peer, initial } => {
                self.engine.register_peer(*peer, Reputation::new(*initial));
            }
            JournalOp::Remove { peer } => self.engine.remove_peer(*peer),
            JournalOp::Batch { batch } => self.engine.report_batch(batch),
            JournalOp::Credit { subject, amount } => self.engine.credit(*subject, *amount),
            JournalOp::Debit { subject, amount } => self.engine.debit(*subject, *amount),
            JournalOp::RegisterBatch { batch } => {
                let batch: Vec<(PeerId, Reputation)> = batch
                    .iter()
                    .map(|&(peer, initial)| (peer, Reputation::new(initial)))
                    .collect();
                self.engine.register_batch(&batch);
            }
        }
    }

    /// Journal-then-apply. Holding the journal lock across both steps
    /// makes journal order identical to apply order; the
    /// `checkpoint_every` trigger fires here, under the same lock, so
    /// an auto-checkpoint is a clean cut of the op stream.
    fn mutate(&self, op: JournalOp) -> Result<(), ServeError> {
        match &self.journal {
            Some(journal) => {
                let mut state = journal.lock().expect("journal lock poisoned");
                state.writer.append(&op)?;
                self.apply(&op);
                state.ops_total += 1;
                state.since_checkpoint += 1;
                if let Some(spec) = &self.checkpoint {
                    if spec.every.is_some_and(|n| state.since_checkpoint >= n) {
                        self.write_checkpoint(&mut state, &spec.path)?;
                    }
                }
            }
            None => self.apply(&op),
        }
        Ok(())
    }

    /// Persists a checkpoint of the full engine state and compacts
    /// the journal to empty. Requires a journalled service.
    ///
    /// The sequence is crash-safe at every cut: sync the journal
    /// (group-commit buffers included), export every partition under
    /// its read lock, encode partition-parallel, write to a temp
    /// file, fsync, rename over the previous checkpoint, fsync the
    /// directory — and only *then* truncate the journal and advance
    /// its seed generation. The journal is never shortened before the
    /// checkpoint that supersedes it is durable.
    pub fn checkpoint(&self) -> Result<CheckpointReport, ServeError> {
        let (journal, spec) = match (&self.journal, &self.checkpoint) {
            (Some(journal), Some(spec)) => (journal, spec),
            _ => {
                return Err(ServeError::Checkpoint(
                    "an in-memory service has no checkpoint file".into(),
                ))
            }
        };
        let mut state = journal.lock().expect("journal lock poisoned");
        self.write_checkpoint(&mut state, &spec.path)
    }

    /// The checkpoint sequence, under the (held) journal lock.
    fn write_checkpoint(
        &self,
        state: &mut JournalState,
        path: &Path,
    ) -> Result<CheckpointReport, ServeError> {
        state.writer.sync()?;
        let parts = self.engine.export_partitions();
        let encoded: Vec<Result<Vec<u8>, WireError>> =
            parts.par_iter().map(replend_wire::to_bytes).collect();
        let mut partitions = Vec::with_capacity(encoded.len());
        for blob in encoded {
            partitions.push(blob.map_err(|e| {
                ServeError::Checkpoint(format!("encoding a partition failed: {e}"))
            })?);
        }
        let doc = CheckpointDoc {
            generation: state.generation + 1,
            ops: state.ops_total,
            policy: self.policy,
            partitions,
        };
        let bytes = encode_checkpoint(self.seed, &doc)
            .map_err(|e| ServeError::Checkpoint(format!("encoding the checkpoint failed: {e}")))?;

        let tmp = checkpoint_tmp_path(path);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)?;

        // The checkpoint is durable and contains every journalled op
        // (taken under the journal lock, after sync). Compact: empty
        // the journal and move to the next seed generation, so a
        // journal that survives a crash in this window is detectably
        // stale rather than silently double-applied.
        let file = state.writer.get_mut();
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.sync_all()?;
        state.generation += 1;
        state.since_checkpoint = 0;
        let generation = state.generation;
        state.writer.set_seed(journal_seed(self.seed, generation));
        Ok(CheckpointReport {
            generation,
            ops: state.ops_total,
            bytes: bytes.len() as u64,
        })
    }

    /// Registers a subject (journalled). Idempotent.
    pub fn register_peer(&self, peer: PeerId, initial: Reputation) -> Result<(), ServeError> {
        self.mutate(JournalOp::Register {
            peer,
            initial: initial.value(),
        })
    }

    /// Registers a batch of subjects in bulk (journalled as **one**
    /// record): per partition, one write-lock acquisition and one
    /// snapshot-epoch publish for the whole batch. Equivalent to —
    /// and bit-identical with — a [`ReputationService::register_peer`]
    /// loop, minus a journal frame and an epoch bump per peer.
    /// Idempotent per peer, like `register_peer`.
    pub fn register_batch(&self, batch: &[(PeerId, Reputation)]) -> Result<(), ServeError> {
        self.mutate(JournalOp::RegisterBatch {
            batch: batch
                .iter()
                .map(|&(peer, initial)| (peer, initial.value()))
                .collect(),
        })
    }

    /// Removes a subject (journalled).
    pub fn remove_peer(&self, peer: PeerId) -> Result<(), ServeError> {
        self.mutate(JournalOp::Remove { peer })
    }

    /// Ingests a feedback batch (journalled as one record).
    pub fn report_batch(&self, batch: &[Feedback]) -> Result<(), ServeError> {
        self.mutate(JournalOp::Batch {
            batch: batch.to_vec(),
        })
    }

    /// Raises `subject`'s reputation (journalled).
    pub fn credit(&self, subject: PeerId, amount: f64) -> Result<(), ServeError> {
        self.mutate(JournalOp::Credit { subject, amount })
    }

    /// Lowers `subject`'s reputation (journalled).
    pub fn debit(&self, subject: PeerId, amount: f64) -> Result<(), ServeError> {
        self.mutate(JournalOp::Debit { subject, amount })
    }

    /// The aggregate reputation of `subject` — a lock-free,
    /// epoch-validated snapshot read; never waits on ingest.
    pub fn reputation(&self, subject: PeerId) -> Option<Reputation> {
        self.engine.reputation(subject)
    }

    /// [`ReputationService::reputation`] through the pre-PR-8 locked
    /// path (one partition read lock). Bit-identical to the snapshot
    /// read; kept as the oracle and contended-read bench baseline.
    pub fn reputation_locked(&self, subject: PeerId) -> Option<Reputation> {
        self.engine.reputation_locked(subject)
    }

    /// The subject's full score-manager snapshot.
    pub fn snapshot(&self, subject: PeerId) -> Option<SubjectSnapshot> {
        self.engine.snapshot(subject)
    }

    /// The subject's operational tier, from a coherent lock-free
    /// `(reputation, interactions)` snapshot read. Served from the
    /// per-subject tier memo when the partition epoch is unchanged
    /// since the last probe — the common whitelist check is then a
    /// single load + compare.
    pub fn status(&self, subject: PeerId) -> Option<SubjectStatus> {
        let policy = self.policy;
        let tier = self
            .engine
            .classify_read(subject, move |r, obs| policy.classify(r, obs).tier())?;
        Some(SubjectStatus::from_tier(tier))
    }

    /// [`ReputationService::status`] through the locked path (no
    /// memo): reputation and applied-report count read under one
    /// partition read lock. Oracle and bench baseline.
    pub fn status_locked(&self, subject: PeerId) -> Option<SubjectStatus> {
        let policy = self.policy;
        let tier = self
            .engine
            .classify_read_locked(subject, move |r, obs| policy.classify(r, obs).tier())?;
        Some(SubjectStatus::from_tier(tier))
    }

    /// Forces any group-commit-buffered journal records onto the file
    /// and flushes. A no-op for in-memory services and under
    /// [`SyncPolicy::Always`].
    pub fn sync_journal(&self) -> Result<(), ServeError> {
        if let Some(journal) = &self.journal {
            journal
                .lock()
                .expect("journal lock poisoned")
                .writer
                .sync()?;
        }
        Ok(())
    }

    /// Registered subjects.
    pub fn subjects(&self) -> usize {
        self.engine.len()
    }

    /// Member-reputation bucket counts over `buckets` equal bins of
    /// `[0, 1]`.
    pub fn histogram(&self, buckets: usize) -> Vec<u64> {
        self.engine.reputation_buckets(buckets)
    }

    /// Counts subjects per status tier in one sweep.
    pub fn status_census(&self) -> StatusCensus {
        let mut census = StatusCensus::default();
        let policy = self.policy;
        self.engine.for_each_subject(|_, reputation, observations| {
            match policy.classify(reputation, observations) {
                SubjectStatus::Whitelisted => census.whitelisted += 1,
                SubjectStatus::Throttled => census.throttled += 1,
                SubjectStatus::Banned => census.banned += 1,
            }
        });
        census
    }
}

/// Subjects per tier, from [`ReputationService::status_census`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatusCensus {
    /// Subjects at full service.
    pub whitelisted: u64,
    /// Subjects rate-limited.
    pub throttled: u64,
    /// Subjects refused.
    pub banned: u64,
}

impl StatusCensus {
    /// All subjects counted.
    pub fn total(&self) -> u64 {
        self.whitelisted + self.throttled + self.banned
    }
}

/// Shape of the synthetic serve workload: `subjects` peers (a
/// deterministic mix of honest and lying reporters), `rounds` ingest
/// batches of `batch` opinions each, with `readers` threads issuing
/// reputation/status probes for the whole ingest window.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Subjects registered up front.
    pub subjects: u64,
    /// Ingest batches to apply.
    pub rounds: u64,
    /// Opinions per batch.
    pub batch: usize,
    /// Concurrent reader threads (0 = ingest only).
    pub readers: usize,
    /// Workload seed (reporter/subject/opinion selection); independent
    /// of the engine seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            subjects: 10_000,
            rounds: 100,
            batch: 1_000,
            readers: 2,
            seed: 1,
        }
    }
}

/// What [`run_ingest_workload`] did. Engine state is a deterministic
/// function of (engine seed, workload config); `reads` is a load
/// metric and varies with scheduling.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkloadReport {
    /// Subjects registered (pre-existing subjects are kept).
    pub registered: u64,
    /// Opinions ingested (`rounds × batch`).
    pub feedback: u64,
    /// Reputation/status probes completed by the reader threads while
    /// ingest was running.
    pub reads: u64,
    /// Tier census after the final batch.
    pub census: StatusCensus,
}

/// Deterministic opinion for `reporter` about `subject` at `round`:
/// roughly 70 % of subjects behave well (mostly 1-opinions), the rest
/// draw mostly 0s, so the census populates every tier.
fn synthetic_opinion(seed: u64, reporter: u64, subject: u64, round: u64) -> f64 {
    let honest = splitmix64(salted(seed, subject)) % 10 < 7;
    let noise = splitmix64(salted(
        seed,
        reporter ^ (round << 32) ^ subject.rotate_left(17),
    )) % 10;
    let positive = if honest { noise < 9 } else { noise < 2 };
    if positive {
        1.0
    } else {
        0.0
    }
}

/// The service loop: registers `cfg.subjects` subjects, then applies
/// `cfg.rounds` synthetic feedback batches while `cfg.readers`
/// threads continuously probe `reputation()` + `status()` against the
/// live service. This is exactly what `replend serve` and the
/// `service` bench run.
///
/// The ingest stream (and therefore the final engine state) is fully
/// deterministic; the read count is not.
pub fn run_ingest_workload(
    service: &ReputationService,
    cfg: WorkloadConfig,
) -> Result<WorkloadReport, ServeError> {
    let mut report = WorkloadReport::default();
    if cfg.subjects > 0 {
        // Bulk registration: one journal record and one epoch window
        // per partition, instead of a frame + flush per subject.
        let batch: Vec<(PeerId, Reputation)> = (0..cfg.subjects)
            .map(|s| (PeerId(s), Reputation::new(0.5)))
            .collect();
        service.register_batch(&batch)?;
        report.registered = cfg.subjects;
    }

    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let ingest_result: Mutex<Result<u64, ServeError>> = Mutex::new(Ok(0));

    std::thread::scope(|scope| {
        for r in 0..cfg.readers {
            let stop = &stop;
            let reads = &reads;
            scope.spawn(move || {
                let mut probe = splitmix64(salted(cfg.seed, r as u64 + 1));
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let subject = PeerId(probe % cfg.subjects.max(1));
                    // Both read entry points: the O(1) aggregate and
                    // the tier classification.
                    let rep = service.reputation(subject);
                    let status = service.status(subject);
                    debug_assert_eq!(rep.is_some(), status.is_some());
                    local += 2;
                    probe = splitmix64(probe);
                    // Publish periodically, not just at exit, so the
                    // ingest thread can observe read progress while
                    // this reader is still running (see the wait
                    // below).
                    if local >= 128 {
                        reads.fetch_add(local, Ordering::Relaxed);
                        local = 0;
                    }
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }

        let mut batch = Vec::with_capacity(cfg.batch);
        let mut applied = 0u64;
        let outcome = (|| -> Result<(), ServeError> {
            for round in 0..cfg.rounds {
                batch.clear();
                for i in 0..cfg.batch as u64 {
                    let k = splitmix64(salted(cfg.seed, round * cfg.batch as u64 + i));
                    let reporter = k % cfg.subjects.max(1);
                    let subject = splitmix64(k) % cfg.subjects.max(1);
                    batch.push(Feedback::new(
                        PeerId(reporter),
                        PeerId(subject),
                        synthetic_opinion(cfg.seed, reporter, subject, round),
                    ));
                }
                service.report_batch(&batch)?;
                applied += batch.len() as u64;
            }
            Ok(())
        })();
        // A short ingest on a saturated host can finish before any
        // reader thread gets a timeslice; the workload's contract is
        // reads *against the live service*, so hold the service live
        // until the readers have made progress (they publish every 64
        // probes). Bounded: the OS preempts this yield loop in favour
        // of the spawned readers.
        if cfg.readers > 0 {
            while reads.load(Ordering::Relaxed) == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        *ingest_result.lock().expect("ingest result lock poisoned") = outcome.map(|()| applied);
    });

    report.feedback = ingest_result
        .into_inner()
        .expect("ingest result lock poisoned")?;
    report.reads = reads.into_inner();
    report.census = service.status_census();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ServeConfig {
        ServeConfig {
            partitions: 4,
            seed: 77,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn status_policy_tiers() {
        let p = StatusPolicy::default();
        assert!(p.validate().is_ok());
        // Below the evidence floor: always whitelisted.
        assert_eq!(
            p.classify(Reputation::new(0.0), 9),
            SubjectStatus::Whitelisted
        );
        // With evidence: banned / throttled / whitelisted by value.
        assert_eq!(p.classify(Reputation::new(0.1), 10), SubjectStatus::Banned);
        assert_eq!(
            p.classify(Reputation::new(0.3), 10),
            SubjectStatus::Throttled
        );
        assert_eq!(
            p.classify(Reputation::new(0.8), 10),
            SubjectStatus::Whitelisted
        );
        // Boundaries are strict `<`.
        assert_eq!(
            p.classify(Reputation::new(0.2), 10),
            SubjectStatus::Throttled
        );
        assert_eq!(
            p.classify(Reputation::new(0.5), 10),
            SubjectStatus::Whitelisted
        );
        let bad = StatusPolicy {
            ban_below: 0.8,
            throttle_below: 0.5,
            ..p
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn in_memory_service_serves_status() {
        let service = ReputationService::in_memory(config());
        assert!(!service.journalled());
        service
            .register_peer(PeerId(1), Reputation::new(0.9))
            .unwrap();
        service
            .register_peer(PeerId(2), Reputation::new(0.9))
            .unwrap();
        assert_eq!(service.status(PeerId(1)), Some(SubjectStatus::Whitelisted));
        // Pile on negative evidence until peer 1 crosses the ban line.
        let batch: Vec<Feedback> = (0..12)
            .map(|_| Feedback::new(PeerId(2), PeerId(1), 0.0))
            .collect();
        for _ in 0..20 {
            service.report_batch(&batch).unwrap();
        }
        assert_eq!(service.status(PeerId(1)), Some(SubjectStatus::Banned));
        assert_eq!(service.status(PeerId(99)), None);
        let census = service.status_census();
        assert_eq!(census.total(), 2);
        assert_eq!(census.banned, 1);
        assert_eq!(service.histogram(10).iter().sum::<u64>(), 2);
    }

    #[test]
    fn workload_reads_run_against_live_ingest() {
        let service = ReputationService::in_memory(config());
        let report = run_ingest_workload(
            &service,
            WorkloadConfig {
                subjects: 200,
                rounds: 20,
                batch: 100,
                readers: 2,
                seed: 5,
            },
        )
        .unwrap();
        assert_eq!(report.registered, 200);
        assert_eq!(report.feedback, 2_000);
        assert!(report.reads > 0, "readers made progress during ingest");
        assert_eq!(report.census.total(), 200);
        assert!(
            report.census.banned > 0 && report.census.whitelisted > 0,
            "synthetic mix populates multiple tiers: {:?}",
            report.census
        );
    }

    #[test]
    fn snapshot_and_locked_reads_agree_including_status_memo() {
        let service = ReputationService::in_memory(config());
        run_ingest_workload(
            &service,
            WorkloadConfig {
                subjects: 120,
                rounds: 8,
                batch: 60,
                readers: 0,
                seed: 13,
            },
        )
        .unwrap();
        for s in 0..120u64 {
            let subject = PeerId(s);
            assert_eq!(
                service.reputation(subject).map(|r| r.value().to_bits()),
                service
                    .reputation_locked(subject)
                    .map(|r| r.value().to_bits()),
            );
            // Twice: the second probe is served from the tier memo
            // and must not diverge.
            assert_eq!(service.status(subject), service.status_locked(subject));
            assert_eq!(service.status(subject), service.status_locked(subject));
        }
    }

    #[test]
    fn group_commit_restart_matches_always_sync() {
        let dir = std::env::temp_dir().join(format!("replend-serve-gc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let run = |name: &str, sync: SyncPolicy| {
            let path = dir.join(name);
            let _ = std::fs::remove_file(&path);
            let cfg = ServeConfig {
                journal_sync: sync,
                ..config()
            };
            {
                let (service, _) = ReputationService::open(cfg, &path).unwrap();
                run_ingest_workload(
                    &service,
                    WorkloadConfig {
                        subjects: 90,
                        rounds: 6,
                        batch: 50,
                        readers: 0,
                        seed: 21,
                    },
                )
                .unwrap();
                // Dropping the service's journal flushes the tail.
            }
            let (reopened, summary) = ReputationService::open(cfg, &path).unwrap();
            assert!(!summary.truncated_torn_tail);
            let mut state: Vec<(u64, u64, u64)> = Vec::new();
            reopened
                .engine()
                .for_each_subject(|p, r, n| state.push((p.raw(), r.value().to_bits(), n)));
            state.sort_unstable();
            let bytes = std::fs::read(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            (state, bytes)
        };
        let (always_state, always_bytes) = run("always.journal", SyncPolicy::Always);
        let (batch_state, batch_bytes) = run("batch.journal", SyncPolicy::Batch(32));
        // Group commit changes when bytes are flushed, never which
        // bytes: identical log, identical replayed state.
        assert_eq!(always_bytes, batch_bytes);
        assert_eq!(always_state, batch_state);
        let _ = std::fs::remove_dir(&dir);
    }

    /// Fresh scratch directory unique to (test, process).
    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("replend-serve-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Sorted `(peer, reputation bits, applied reports)` — the full
    /// observable read state.
    fn fingerprint(service: &ReputationService) -> Vec<(u64, u64, u64)> {
        let mut state = Vec::new();
        service
            .engine()
            .for_each_subject(|p, r, n| state.push((p.raw(), r.value().to_bits(), n)));
        state.sort_unstable();
        state
    }

    fn small_workload(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            subjects: 80,
            rounds: 6,
            batch: 40,
            readers: 0,
            seed,
        }
    }

    #[test]
    fn bulk_register_journals_one_record() {
        let dir = scratch("bulk");
        let path = dir.join("svc.journal");
        let batch: Vec<(PeerId, Reputation)> = (0..50u64)
            .map(|s| (PeerId(s), Reputation::new(0.5)))
            .collect();
        {
            let (service, _) = ReputationService::open(config(), &path).unwrap();
            service.register_batch(&batch).unwrap();
        }
        let (reopened, summary) = ReputationService::open(config(), &path).unwrap();
        assert_eq!(summary.records, 1, "one frame for the whole batch");
        assert_eq!(reopened.subjects(), 50);

        // Bit-identical to the per-peer loop.
        let looped = ReputationService::in_memory(config());
        for &(p, r) in &batch {
            looped.register_peer(p, r).unwrap();
        }
        assert_eq!(fingerprint(&looped), fingerprint(&reopened));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_restart_matches_full_replay_and_compacts() {
        let dir = scratch("ckpt");
        let path = dir.join("svc.journal");
        // Reference: the same op stream with no checkpoint anywhere.
        let reference = ReputationService::in_memory(config());
        run_ingest_workload(&reference, small_workload(21)).unwrap();
        run_ingest_workload(&reference, small_workload(22)).unwrap();

        {
            let (service, _) = ReputationService::open(config(), &path).unwrap();
            run_ingest_workload(&service, small_workload(21)).unwrap();
            let report = service.checkpoint().unwrap();
            assert_eq!(report.generation, 1);
            assert_eq!(report.ops, 1 + 6, "one bulk register + six batches");
            // Compaction: the journal is empty once the checkpoint is
            // durable.
            assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
            assert!(checkpoint_path(&path).exists());
            // The suffix.
            run_ingest_workload(&service, small_workload(22)).unwrap();
        }

        let (reopened, summary) = ReputationService::open(config(), &path).unwrap();
        assert!(summary.restored_from_checkpoint());
        assert_eq!(summary.checkpoint_generation, 1);
        assert_eq!(summary.replayed_from_checkpoint, 7);
        assert_eq!(summary.replayed_from_journal(), 7, "suffix only");
        assert_eq!(fingerprint(&reopened), fingerprint(&reference));

        // The restart composes: further identical ops land on
        // identical bits.
        run_ingest_workload(&reopened, small_workload(23)).unwrap();
        run_ingest_workload(&reference, small_workload(23)).unwrap();
        assert_eq!(fingerprint(&reopened), fingerprint(&reference));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_or_corrupt_checkpoint_falls_back_to_full_replay() {
        let dir = scratch("torn-ckpt");
        let path = dir.join("svc.journal");
        {
            let (service, _) = ReputationService::open(config(), &path).unwrap();
            run_ingest_workload(&service, small_workload(31)).unwrap();
        }
        let reference = ReputationService::in_memory(config());
        run_ingest_workload(&reference, small_workload(31)).unwrap();

        // A valid checkpoint taken against a copy of the same journal
        // gives us realistic bytes to tear.
        let twin = dir.join("twin.journal");
        std::fs::copy(&path, &twin).unwrap();
        {
            let (twin_svc, _) = ReputationService::open(config(), &twin).unwrap();
            twin_svc.checkpoint().unwrap();
        }
        let valid = std::fs::read(checkpoint_path(&twin)).unwrap();

        for (label, bytes) in [
            ("garbage", b"not a checkpoint".to_vec()),
            ("torn early", valid[..3].to_vec()),
            ("torn mid-payload", valid[..valid.len() * 2 / 3].to_vec()),
            ("trailing garbage", [&valid[..], b"x"].concat()),
        ] {
            std::fs::write(checkpoint_path(&path), &bytes).unwrap();
            let (reopened, summary) = ReputationService::open(config(), &path).unwrap();
            assert!(
                !summary.restored_from_checkpoint(),
                "{label}: must fall back to full replay"
            );
            assert_eq!(summary.records, 7, "{label}");
            assert_eq!(fingerprint(&reopened), fingerprint(&reference), "{label}");
        }

        // An orphaned temp file from a crash mid-write is ignored.
        std::fs::remove_file(checkpoint_path(&path)).unwrap();
        std::fs::write(checkpoint_tmp_path(&checkpoint_path(&path)), &valid).unwrap();
        let (reopened, summary) = ReputationService::open(config(), &path).unwrap();
        assert!(!summary.restored_from_checkpoint());
        assert_eq!(fingerprint(&reopened), fingerprint(&reference));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_generation_journal_is_discarded_after_rename_crash() {
        let dir = scratch("stale-gen");
        let path = dir.join("svc.journal");
        {
            let (service, _) = ReputationService::open(config(), &path).unwrap();
            run_ingest_workload(&service, small_workload(41)).unwrap();
        }
        let generation0 = std::fs::read(&path).unwrap();
        {
            let (service, _) = ReputationService::open(config(), &path).unwrap();
            service.checkpoint().unwrap();
        }
        // Crash window: the checkpoint rename landed but the journal
        // truncation never ran — the full generation-0 journal is
        // still on disk, every record of it inside the checkpoint.
        std::fs::write(&path, &generation0).unwrap();

        let (reopened, summary) = ReputationService::open(config(), &path).unwrap();
        assert!(summary.restored_from_checkpoint());
        assert_eq!(summary.records, 0, "stale journal replays nothing");
        assert_eq!(summary.bytes, 0);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            0,
            "interrupted compaction is completed on open"
        );
        let reference = ReputationService::in_memory(config());
        run_ingest_workload(&reference, small_workload(41)).unwrap();
        assert_eq!(fingerprint(&reopened), fingerprint(&reference));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_seed_checkpoint_and_orphan_suffix_are_hard_errors() {
        let dir = scratch("hard-errors");
        let path = dir.join("svc.journal");
        {
            let (service, _) = ReputationService::open(config(), &path).unwrap();
            run_ingest_workload(&service, small_workload(51)).unwrap();
            service.checkpoint().unwrap();
            // A post-checkpoint suffix.
            service
                .register_peer(PeerId(900), Reputation::new(0.5))
                .unwrap();
        }

        // Wrong service seed: the checkpoint decodes fine but is some
        // other service's state — refuse, don't "fall back".
        let foreign = ServeConfig {
            seed: config().seed + 1,
            ..config()
        };
        match ReputationService::open(foreign, &path) {
            Err(ServeError::Checkpoint(m)) => assert!(m.contains("seed"), "{m}"),
            Err(other) => panic!("expected a checkpoint seed error, got {other}"),
            Ok(_) => panic!("a foreign-seed checkpoint must not open"),
        }

        // Checkpoint gone but the journal is a generation-1 suffix:
        // replaying it alone would serve a partial history.
        std::fs::remove_file(checkpoint_path(&path)).unwrap();
        match ReputationService::open(config(), &path) {
            Err(ServeError::Checkpoint(m)) => assert!(m.contains("suffix"), "{m}"),
            Err(other) => panic!("expected a missing-checkpoint error, got {other}"),
            Ok(_) => panic!("an orphaned suffix journal must not open"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_checkpoint_fires_on_cadence() {
        let dir = scratch("auto-ckpt");
        let path = dir.join("svc.journal");
        let cfg = ServeConfig {
            checkpoint_every: Some(3),
            ..config()
        };
        {
            let (service, _) = ReputationService::open(cfg, &path).unwrap();
            for s in 0..5u64 {
                service
                    .register_peer(PeerId(s), Reputation::new(0.5))
                    .unwrap();
            }
        }
        let (reopened, summary) = ReputationService::open(cfg, &path).unwrap();
        assert_eq!(summary.checkpoint_generation, 1, "cadence hit at op 3");
        assert_eq!(summary.replayed_from_checkpoint, 3);
        assert_eq!(summary.records, 2, "ops 4 and 5 stay in the journal");
        assert_eq!(reopened.subjects(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workload_final_state_is_deterministic() {
        let fingerprint = |readers: usize| {
            let service = ReputationService::in_memory(config());
            run_ingest_workload(
                &service,
                WorkloadConfig {
                    subjects: 150,
                    rounds: 10,
                    batch: 80,
                    readers,
                    seed: 9,
                },
            )
            .unwrap();
            let mut state: Vec<(u64, u64, u64)> = Vec::new();
            service
                .engine()
                .for_each_subject(|p, r, n| state.push((p.raw(), r.value().to_bits(), n)));
            state.sort_unstable();
            state
        };
        // Reader pressure must not perturb the engine state.
        assert_eq!(fingerprint(0), fingerprint(3));
    }
}

//! The serve layer: an online, concurrently-readable reputation
//! service over the arena engine, with an append-only write-ahead
//! feedback journal as its durable source of truth.
//!
//! Everything before this module is batch-simulation-shaped — one
//! owner mutates an engine while readers wait their turn. A deployed
//! reputation store is used the other way around: a heavy stream of
//! `reputation()` / status probes from admission control, punctuated
//! by feedback ingest. [`ReputationService`] serves that shape:
//!
//! * **Wait-free reads.** Subjects live in a [`ConcurrentEngine`] —
//!   a lock-per-partition facade whose hot read fields are published
//!   through an epoch-versioned snapshot slab — so `reputation()` and
//!   `status()` probes take **no lock at all**: they read the slab,
//!   validate the partition epoch, and retry only if a batch
//!   published mid-read. Every individual subject is linearizable and
//!   every read observes exactly a pre-batch or post-batch state
//!   (never a mix), bit-identical to what the locked path would
//!   return; cross-subject sweeps are still not a consistent global
//!   snapshot (see the `replend_rocq::concurrent` module docs).
//! * **Status tiers.** [`StatusPolicy`] maps a subject's reputation
//!   *and* its applied-report count to an operational
//!   [`SubjectStatus`]: `Whitelisted` / `Throttled` / `Banned`. The
//!   interaction floor keeps a newcomer with two low reports from
//!   being banned on no evidence — below `min_observations` the
//!   policy stays permissive and lets the lending protocol's own
//!   stake bear the risk. The common whitelist probe is served from a
//!   per-subject tier memo keyed by the partition epoch: a repeat
//!   `status()` at an unchanged epoch is a single load + compare.
//! * **Write-ahead journal.** With a journal attached, every mutation
//!   is appended to an append-only log of length-prefixed
//!   `replend-wire` frames *before* it touches the engine. The
//!   [`SyncPolicy`] picks the durability point: `Always` flushes
//!   every record before applying it (the strict WAL contract);
//!   `Batch(N)` group-commits — frames buffer in memory and hit the
//!   file every `N` appends, trading up to `N - 1` applied-but-
//!   unflushed operations on a crash for fewer syscalls, while the
//!   byte stream (and therefore replay state) stays identical. A
//!   restarted service replays the log through the same apply path
//!   and reaches byte-identical engine state — pinned by the
//!   determinism suite. A torn final frame is truncated on open;
//!   under group commit a torn tail can only start at a flushed-batch
//!   boundary, so the truncation is still exact.
//!
//! The one-writer/many-readers split is by construction: mutators
//! serialize on the journal lock (a WAL has one tail), while readers
//! bypass locks entirely on the snapshot slab. [`run_ingest_workload`]
//! is the service loop the `replend serve` subcommand and the service
//! bench both drive: a deterministic synthetic ingest stream with
//! reader threads hammering the read path the whole time.

use replend_rocq::concurrent::ConcurrentEngine;
use replend_rocq::inspect::SubjectSnapshot;
use replend_rocq::RocqParams;
use replend_types::hash::{salted, splitmix64};
use replend_types::{Feedback, PeerId, Reputation};
pub use replend_wire::SyncPolicy;
use replend_wire::{JournalError, JournalReader, JournalWriter};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Seek, SeekFrom};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The operational tier admission control acts on: serve the request,
/// serve it rate-limited, or refuse it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubjectStatus {
    /// Full service: reputable, or not yet enough evidence to judge.
    Whitelisted,
    /// Degraded service: reputation below the throttle line.
    Throttled,
    /// Refused: reputation below the ban line with real evidence.
    Banned,
}

impl SubjectStatus {
    /// Stable lowercase name for reports and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            SubjectStatus::Whitelisted => "whitelisted",
            SubjectStatus::Throttled => "throttled",
            SubjectStatus::Banned => "banned",
        }
    }

    /// Dense tier code for the engine-side status memo (must stay
    /// `< 4`: the memo packs it into two bits).
    const fn tier(self) -> u8 {
        match self {
            SubjectStatus::Whitelisted => 0,
            SubjectStatus::Throttled => 1,
            SubjectStatus::Banned => 2,
        }
    }

    const fn from_tier(tier: u8) -> SubjectStatus {
        match tier {
            0 => SubjectStatus::Whitelisted,
            1 => SubjectStatus::Throttled,
            _ => SubjectStatus::Banned,
        }
    }
}

impl fmt::Display for SubjectStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Maps (reputation, applied-report count) to a [`SubjectStatus`].
///
/// Tiering on reputation alone would ban every newcomer the first
/// time a liar reported on them; the `min_observations` evidence
/// floor (cf. the `ReputationBox` admission tiers this layer is
/// modeled on) keeps the policy permissive until the score managers
/// have actually heard enough.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatusPolicy {
    /// Applied reports required before a subject can be throttled or
    /// banned. Below this the status is always `Whitelisted`.
    pub min_observations: u64,
    /// Reputations strictly below this are at most `Throttled`.
    pub throttle_below: f64,
    /// Reputations strictly below this are `Banned`.
    pub ban_below: f64,
}

impl Default for StatusPolicy {
    fn default() -> Self {
        StatusPolicy {
            min_observations: 10,
            throttle_below: 0.5,
            ban_below: 0.2,
        }
    }
}

impl StatusPolicy {
    /// The tier for a subject with the given aggregate reputation and
    /// applied-report count.
    pub fn classify(&self, reputation: Reputation, observations: u64) -> SubjectStatus {
        if observations < self.min_observations {
            return SubjectStatus::Whitelisted;
        }
        let r = reputation.value();
        if r < self.ban_below {
            SubjectStatus::Banned
        } else if r < self.throttle_below {
            SubjectStatus::Throttled
        } else {
            SubjectStatus::Whitelisted
        }
    }

    /// Checks the thresholds are ordered and in range.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.ban_below) || !(0.0..=1.0).contains(&self.throttle_below) {
            return Err("status thresholds must lie in [0, 1]".into());
        }
        if self.ban_below > self.throttle_below {
            return Err(format!(
                "ban_below ({}) must not exceed throttle_below ({})",
                self.ban_below, self.throttle_below
            ));
        }
        Ok(())
    }
}

/// Static configuration of a [`ReputationService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// ROCQ parameters for every partition engine. The crash model
    /// defaults to off (`crash_prob = 0`): a service node does not
    /// simulate its own replica crashes.
    pub params: RocqParams,
    /// Score-manager replicas per subject.
    pub num_sm: usize,
    /// Lock partitions (independent read/write domains).
    pub partitions: usize,
    /// Engine seed; also stamped into every journal frame so a log
    /// cannot be replayed into a differently-seeded service.
    pub seed: u64,
    /// The status-tier thresholds.
    pub policy: StatusPolicy,
    /// When journal appends reach the file: every record
    /// ([`SyncPolicy::Always`], the default) or group-committed in
    /// batches ([`SyncPolicy::Batch`]). Ignored by in-memory services.
    pub journal_sync: SyncPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            params: RocqParams {
                crash_prob: 0.0,
                ..RocqParams::default()
            },
            // Table 1's `numSM` paper default.
            num_sm: 6,
            partitions: 8,
            seed: 0,
            policy: StatusPolicy::default(),
            journal_sync: SyncPolicy::Always,
        }
    }
}

/// One journalled mutation. The journal is the write-ahead log of
/// *operations*, not of resulting states: replaying the ops through
/// the same engine code is what makes restart byte-identical, and it
/// keeps each frame small and version-gated by `replend-wire`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JournalOp {
    /// `register_peer(peer, initial)`.
    Register { peer: PeerId, initial: f64 },
    /// `remove_peer(peer)`.
    Remove { peer: PeerId },
    /// `report_batch(&batch)`.
    Batch { batch: Vec<Feedback> },
    /// `credit(subject, amount)`.
    Credit { subject: PeerId, amount: f64 },
    /// `debit(subject, amount)`.
    Debit { subject: PeerId, amount: f64 },
}

/// Serve-layer failures: journal I/O and journal decode/replay.
#[derive(Debug)]
pub enum ServeError {
    /// Appending to or replaying the journal failed.
    Journal(JournalError),
    /// Opening, truncating or seeking the journal file failed.
    Io(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Journal(e) => write!(f, "journal: {e}"),
            ServeError::Io(e) => write!(f, "journal file: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<JournalError> for ServeError {
    fn from(e: JournalError) -> Self {
        ServeError::Journal(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// What [`ReputationService::open`] found in an existing journal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Operations replayed from the intact prefix.
    pub records: u64,
    /// Bytes of intact journal retained.
    pub bytes: u64,
    /// True when a torn final frame was truncated away.
    pub truncated_torn_tail: bool,
}

/// The online reputation service. Mutators take `&self` and serialize
/// on the journal lock; reads go straight to the concurrent engine's
/// lock-free snapshot slabs, so the service can be shared across
/// reader threads (`&ReputationService` is `Send + Sync`).
pub struct ReputationService {
    engine: ConcurrentEngine,
    policy: StatusPolicy,
    seed: u64,
    /// `None` for an in-memory (journal-less) service. The mutex is
    /// the WAL tail: it orders append *and* apply, so journal order
    /// is exactly apply order — the replay contract.
    journal: Option<Mutex<JournalWriter<File>>>,
}

impl ReputationService {
    /// An in-memory service: no durability, same semantics otherwise.
    pub fn in_memory(config: ServeConfig) -> Self {
        ReputationService {
            engine: ConcurrentEngine::new(
                config.params,
                config.num_sm,
                config.partitions,
                config.seed,
            ),
            policy: config.policy,
            seed: config.seed,
            journal: None,
        }
    }

    /// Opens (creating if absent) the journal at `path`, replays its
    /// intact prefix into a fresh engine, truncates a torn tail if
    /// the last run crashed mid-append, and attaches the file as the
    /// service's write-ahead log.
    ///
    /// Replay runs every operation through the same apply path live
    /// mutations use, so the rebuilt engine is byte-identical to the
    /// pre-restart one — the determinism suite pins this.
    pub fn open(config: ServeConfig, path: &Path) -> Result<(Self, ReplaySummary), ServeError> {
        let mut service = Self::in_memory(config);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;

        let mut summary = ReplaySummary::default();
        let mut reader = JournalReader::new(BufReader::new(&mut file), config.seed);
        while let Some(op) = reader.next::<JournalOp>()? {
            service.apply(&op);
            summary.records += 1;
        }
        summary.bytes = reader.consumed();
        summary.truncated_torn_tail = reader.torn_tail();
        if summary.truncated_torn_tail {
            // The torn op was journalled but never applied (append
            // happens first and flushes); dropping it loses nothing
            // the engine ever saw.
            file.set_len(summary.bytes)?;
        }
        file.seek(SeekFrom::Start(summary.bytes))?;
        service.journal = Some(Mutex::new(JournalWriter::with_policy(
            file,
            config.seed,
            config.journal_sync,
        )));
        Ok((service, summary))
    }

    /// The engine seed (and journal seed stamp).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The status-tier thresholds in force.
    pub fn policy(&self) -> StatusPolicy {
        self.policy
    }

    /// The underlying concurrent engine, for read fan-out.
    pub fn engine(&self) -> &ConcurrentEngine {
        &self.engine
    }

    /// True when mutations are journalled.
    pub fn journalled(&self) -> bool {
        self.journal.is_some()
    }

    fn apply(&self, op: &JournalOp) {
        match op {
            JournalOp::Register { peer, initial } => {
                self.engine.register_peer(*peer, Reputation::new(*initial));
            }
            JournalOp::Remove { peer } => self.engine.remove_peer(*peer),
            JournalOp::Batch { batch } => self.engine.report_batch(batch),
            JournalOp::Credit { subject, amount } => self.engine.credit(*subject, *amount),
            JournalOp::Debit { subject, amount } => self.engine.debit(*subject, *amount),
        }
    }

    /// Journal-then-apply. Holding the journal lock across both steps
    /// makes journal order identical to apply order.
    fn mutate(&self, op: JournalOp) -> Result<(), ServeError> {
        match &self.journal {
            Some(journal) => {
                let mut writer = journal.lock().expect("journal lock poisoned");
                writer.append(&op)?;
                self.apply(&op);
            }
            None => self.apply(&op),
        }
        Ok(())
    }

    /// Registers a subject (journalled). Idempotent.
    pub fn register_peer(&self, peer: PeerId, initial: Reputation) -> Result<(), ServeError> {
        self.mutate(JournalOp::Register {
            peer,
            initial: initial.value(),
        })
    }

    /// Removes a subject (journalled).
    pub fn remove_peer(&self, peer: PeerId) -> Result<(), ServeError> {
        self.mutate(JournalOp::Remove { peer })
    }

    /// Ingests a feedback batch (journalled as one record).
    pub fn report_batch(&self, batch: &[Feedback]) -> Result<(), ServeError> {
        self.mutate(JournalOp::Batch {
            batch: batch.to_vec(),
        })
    }

    /// Raises `subject`'s reputation (journalled).
    pub fn credit(&self, subject: PeerId, amount: f64) -> Result<(), ServeError> {
        self.mutate(JournalOp::Credit { subject, amount })
    }

    /// Lowers `subject`'s reputation (journalled).
    pub fn debit(&self, subject: PeerId, amount: f64) -> Result<(), ServeError> {
        self.mutate(JournalOp::Debit { subject, amount })
    }

    /// The aggregate reputation of `subject` — a lock-free,
    /// epoch-validated snapshot read; never waits on ingest.
    pub fn reputation(&self, subject: PeerId) -> Option<Reputation> {
        self.engine.reputation(subject)
    }

    /// [`ReputationService::reputation`] through the pre-PR-8 locked
    /// path (one partition read lock). Bit-identical to the snapshot
    /// read; kept as the oracle and contended-read bench baseline.
    pub fn reputation_locked(&self, subject: PeerId) -> Option<Reputation> {
        self.engine.reputation_locked(subject)
    }

    /// The subject's full score-manager snapshot.
    pub fn snapshot(&self, subject: PeerId) -> Option<SubjectSnapshot> {
        self.engine.snapshot(subject)
    }

    /// The subject's operational tier, from a coherent lock-free
    /// `(reputation, interactions)` snapshot read. Served from the
    /// per-subject tier memo when the partition epoch is unchanged
    /// since the last probe — the common whitelist check is then a
    /// single load + compare.
    pub fn status(&self, subject: PeerId) -> Option<SubjectStatus> {
        let policy = self.policy;
        let tier = self
            .engine
            .classify_read(subject, move |r, obs| policy.classify(r, obs).tier())?;
        Some(SubjectStatus::from_tier(tier))
    }

    /// [`ReputationService::status`] through the locked path (no
    /// memo): reputation and applied-report count read under one
    /// partition read lock. Oracle and bench baseline.
    pub fn status_locked(&self, subject: PeerId) -> Option<SubjectStatus> {
        let policy = self.policy;
        let tier = self
            .engine
            .classify_read_locked(subject, move |r, obs| policy.classify(r, obs).tier())?;
        Some(SubjectStatus::from_tier(tier))
    }

    /// Forces any group-commit-buffered journal records onto the file
    /// and flushes. A no-op for in-memory services and under
    /// [`SyncPolicy::Always`].
    pub fn sync_journal(&self) -> Result<(), ServeError> {
        if let Some(journal) = &self.journal {
            journal.lock().expect("journal lock poisoned").sync()?;
        }
        Ok(())
    }

    /// Registered subjects.
    pub fn subjects(&self) -> usize {
        self.engine.len()
    }

    /// Member-reputation bucket counts over `buckets` equal bins of
    /// `[0, 1]`.
    pub fn histogram(&self, buckets: usize) -> Vec<u64> {
        self.engine.reputation_buckets(buckets)
    }

    /// Counts subjects per status tier in one sweep.
    pub fn status_census(&self) -> StatusCensus {
        let mut census = StatusCensus::default();
        let policy = self.policy;
        self.engine.for_each_subject(|_, reputation, observations| {
            match policy.classify(reputation, observations) {
                SubjectStatus::Whitelisted => census.whitelisted += 1,
                SubjectStatus::Throttled => census.throttled += 1,
                SubjectStatus::Banned => census.banned += 1,
            }
        });
        census
    }
}

/// Subjects per tier, from [`ReputationService::status_census`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatusCensus {
    /// Subjects at full service.
    pub whitelisted: u64,
    /// Subjects rate-limited.
    pub throttled: u64,
    /// Subjects refused.
    pub banned: u64,
}

impl StatusCensus {
    /// All subjects counted.
    pub fn total(&self) -> u64 {
        self.whitelisted + self.throttled + self.banned
    }
}

/// Shape of the synthetic serve workload: `subjects` peers (a
/// deterministic mix of honest and lying reporters), `rounds` ingest
/// batches of `batch` opinions each, with `readers` threads issuing
/// reputation/status probes for the whole ingest window.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Subjects registered up front.
    pub subjects: u64,
    /// Ingest batches to apply.
    pub rounds: u64,
    /// Opinions per batch.
    pub batch: usize,
    /// Concurrent reader threads (0 = ingest only).
    pub readers: usize,
    /// Workload seed (reporter/subject/opinion selection); independent
    /// of the engine seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            subjects: 10_000,
            rounds: 100,
            batch: 1_000,
            readers: 2,
            seed: 1,
        }
    }
}

/// What [`run_ingest_workload`] did. Engine state is a deterministic
/// function of (engine seed, workload config); `reads` is a load
/// metric and varies with scheduling.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkloadReport {
    /// Subjects registered (pre-existing subjects are kept).
    pub registered: u64,
    /// Opinions ingested (`rounds × batch`).
    pub feedback: u64,
    /// Reputation/status probes completed by the reader threads while
    /// ingest was running.
    pub reads: u64,
    /// Tier census after the final batch.
    pub census: StatusCensus,
}

/// Deterministic opinion for `reporter` about `subject` at `round`:
/// roughly 70 % of subjects behave well (mostly 1-opinions), the rest
/// draw mostly 0s, so the census populates every tier.
fn synthetic_opinion(seed: u64, reporter: u64, subject: u64, round: u64) -> f64 {
    let honest = splitmix64(salted(seed, subject)) % 10 < 7;
    let noise = splitmix64(salted(
        seed,
        reporter ^ (round << 32) ^ subject.rotate_left(17),
    )) % 10;
    let positive = if honest { noise < 9 } else { noise < 2 };
    if positive {
        1.0
    } else {
        0.0
    }
}

/// The service loop: registers `cfg.subjects` subjects, then applies
/// `cfg.rounds` synthetic feedback batches while `cfg.readers`
/// threads continuously probe `reputation()` + `status()` against the
/// live service. This is exactly what `replend serve` and the
/// `service` bench run.
///
/// The ingest stream (and therefore the final engine state) is fully
/// deterministic; the read count is not.
pub fn run_ingest_workload(
    service: &ReputationService,
    cfg: WorkloadConfig,
) -> Result<WorkloadReport, ServeError> {
    let mut report = WorkloadReport::default();
    for s in 0..cfg.subjects {
        service.register_peer(PeerId(s), Reputation::new(0.5))?;
        report.registered += 1;
    }

    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let ingest_result: Mutex<Result<u64, ServeError>> = Mutex::new(Ok(0));

    std::thread::scope(|scope| {
        for r in 0..cfg.readers {
            let stop = &stop;
            let reads = &reads;
            scope.spawn(move || {
                let mut probe = splitmix64(salted(cfg.seed, r as u64 + 1));
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let subject = PeerId(probe % cfg.subjects.max(1));
                    // Both read entry points: the O(1) aggregate and
                    // the tier classification.
                    let rep = service.reputation(subject);
                    let status = service.status(subject);
                    debug_assert_eq!(rep.is_some(), status.is_some());
                    local += 2;
                    probe = splitmix64(probe);
                    // Publish periodically, not just at exit, so the
                    // ingest thread can observe read progress while
                    // this reader is still running (see the wait
                    // below).
                    if local >= 128 {
                        reads.fetch_add(local, Ordering::Relaxed);
                        local = 0;
                    }
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }

        let mut batch = Vec::with_capacity(cfg.batch);
        let mut applied = 0u64;
        let outcome = (|| -> Result<(), ServeError> {
            for round in 0..cfg.rounds {
                batch.clear();
                for i in 0..cfg.batch as u64 {
                    let k = splitmix64(salted(cfg.seed, round * cfg.batch as u64 + i));
                    let reporter = k % cfg.subjects.max(1);
                    let subject = splitmix64(k) % cfg.subjects.max(1);
                    batch.push(Feedback::new(
                        PeerId(reporter),
                        PeerId(subject),
                        synthetic_opinion(cfg.seed, reporter, subject, round),
                    ));
                }
                service.report_batch(&batch)?;
                applied += batch.len() as u64;
            }
            Ok(())
        })();
        // A short ingest on a saturated host can finish before any
        // reader thread gets a timeslice; the workload's contract is
        // reads *against the live service*, so hold the service live
        // until the readers have made progress (they publish every 64
        // probes). Bounded: the OS preempts this yield loop in favour
        // of the spawned readers.
        if cfg.readers > 0 {
            while reads.load(Ordering::Relaxed) == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        *ingest_result.lock().expect("ingest result lock poisoned") = outcome.map(|()| applied);
    });

    report.feedback = ingest_result
        .into_inner()
        .expect("ingest result lock poisoned")?;
    report.reads = reads.into_inner();
    report.census = service.status_census();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ServeConfig {
        ServeConfig {
            partitions: 4,
            seed: 77,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn status_policy_tiers() {
        let p = StatusPolicy::default();
        assert!(p.validate().is_ok());
        // Below the evidence floor: always whitelisted.
        assert_eq!(
            p.classify(Reputation::new(0.0), 9),
            SubjectStatus::Whitelisted
        );
        // With evidence: banned / throttled / whitelisted by value.
        assert_eq!(p.classify(Reputation::new(0.1), 10), SubjectStatus::Banned);
        assert_eq!(
            p.classify(Reputation::new(0.3), 10),
            SubjectStatus::Throttled
        );
        assert_eq!(
            p.classify(Reputation::new(0.8), 10),
            SubjectStatus::Whitelisted
        );
        // Boundaries are strict `<`.
        assert_eq!(
            p.classify(Reputation::new(0.2), 10),
            SubjectStatus::Throttled
        );
        assert_eq!(
            p.classify(Reputation::new(0.5), 10),
            SubjectStatus::Whitelisted
        );
        let bad = StatusPolicy {
            ban_below: 0.8,
            throttle_below: 0.5,
            ..p
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn in_memory_service_serves_status() {
        let service = ReputationService::in_memory(config());
        assert!(!service.journalled());
        service
            .register_peer(PeerId(1), Reputation::new(0.9))
            .unwrap();
        service
            .register_peer(PeerId(2), Reputation::new(0.9))
            .unwrap();
        assert_eq!(service.status(PeerId(1)), Some(SubjectStatus::Whitelisted));
        // Pile on negative evidence until peer 1 crosses the ban line.
        let batch: Vec<Feedback> = (0..12)
            .map(|_| Feedback::new(PeerId(2), PeerId(1), 0.0))
            .collect();
        for _ in 0..20 {
            service.report_batch(&batch).unwrap();
        }
        assert_eq!(service.status(PeerId(1)), Some(SubjectStatus::Banned));
        assert_eq!(service.status(PeerId(99)), None);
        let census = service.status_census();
        assert_eq!(census.total(), 2);
        assert_eq!(census.banned, 1);
        assert_eq!(service.histogram(10).iter().sum::<u64>(), 2);
    }

    #[test]
    fn workload_reads_run_against_live_ingest() {
        let service = ReputationService::in_memory(config());
        let report = run_ingest_workload(
            &service,
            WorkloadConfig {
                subjects: 200,
                rounds: 20,
                batch: 100,
                readers: 2,
                seed: 5,
            },
        )
        .unwrap();
        assert_eq!(report.registered, 200);
        assert_eq!(report.feedback, 2_000);
        assert!(report.reads > 0, "readers made progress during ingest");
        assert_eq!(report.census.total(), 200);
        assert!(
            report.census.banned > 0 && report.census.whitelisted > 0,
            "synthetic mix populates multiple tiers: {:?}",
            report.census
        );
    }

    #[test]
    fn snapshot_and_locked_reads_agree_including_status_memo() {
        let service = ReputationService::in_memory(config());
        run_ingest_workload(
            &service,
            WorkloadConfig {
                subjects: 120,
                rounds: 8,
                batch: 60,
                readers: 0,
                seed: 13,
            },
        )
        .unwrap();
        for s in 0..120u64 {
            let subject = PeerId(s);
            assert_eq!(
                service.reputation(subject).map(|r| r.value().to_bits()),
                service
                    .reputation_locked(subject)
                    .map(|r| r.value().to_bits()),
            );
            // Twice: the second probe is served from the tier memo
            // and must not diverge.
            assert_eq!(service.status(subject), service.status_locked(subject));
            assert_eq!(service.status(subject), service.status_locked(subject));
        }
    }

    #[test]
    fn group_commit_restart_matches_always_sync() {
        let dir = std::env::temp_dir().join(format!("replend-serve-gc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let run = |name: &str, sync: SyncPolicy| {
            let path = dir.join(name);
            let _ = std::fs::remove_file(&path);
            let cfg = ServeConfig {
                journal_sync: sync,
                ..config()
            };
            {
                let (service, _) = ReputationService::open(cfg, &path).unwrap();
                run_ingest_workload(
                    &service,
                    WorkloadConfig {
                        subjects: 90,
                        rounds: 6,
                        batch: 50,
                        readers: 0,
                        seed: 21,
                    },
                )
                .unwrap();
                // Dropping the service's journal flushes the tail.
            }
            let (reopened, summary) = ReputationService::open(cfg, &path).unwrap();
            assert!(!summary.truncated_torn_tail);
            let mut state: Vec<(u64, u64, u64)> = Vec::new();
            reopened
                .engine()
                .for_each_subject(|p, r, n| state.push((p.raw(), r.value().to_bits(), n)));
            state.sort_unstable();
            let bytes = std::fs::read(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            (state, bytes)
        };
        let (always_state, always_bytes) = run("always.journal", SyncPolicy::Always);
        let (batch_state, batch_bytes) = run("batch.journal", SyncPolicy::Batch(32));
        // Group commit changes when bytes are flushed, never which
        // bytes: identical log, identical replayed state.
        assert_eq!(always_bytes, batch_bytes);
        assert_eq!(always_state, batch_state);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn workload_final_state_is_deterministic() {
        let fingerprint = |readers: usize| {
            let service = ReputationService::in_memory(config());
            run_ingest_workload(
                &service,
                WorkloadConfig {
                    subjects: 150,
                    rounds: 10,
                    batch: 80,
                    readers,
                    seed: 9,
                },
            )
            .unwrap();
            let mut state: Vec<(u64, u64, u64)> = Vec::new();
            service
                .engine()
                .for_each_subject(|p, r, n| state.push((p.raw(), r.value().to_bits(), n)));
            state.sort_unstable();
            state
        };
        // Reader pressure must not perturb the engine state.
        assert_eq!(fingerprint(0), fingerprint(3));
    }
}

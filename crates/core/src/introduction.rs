//! The introduction state machine (§2, "Multiple introduction
//! requests" and §3).
//!
//! Timeline of one introduction:
//!
//! 1. On arrival, the newcomer asks one potential introducer. The
//!    introducer immediately *decides* (naive: always willing;
//!    selective: willing for cooperative applicants and for `err_sel`
//!    of uncooperative ones) but the newcomer learns nothing yet.
//! 2. A waiting period `T` must elapse — *"regardless of whether the
//!    introducer decides to introduce the new peer or not"* — which
//!    rate-limits introduction shopping.
//! 3. At `request + T` the request resolves: if the introducer is
//!    willing **and** still holds `minIntro` reputation, its score
//!    managers deduct `introAmt` and credit the newcomer's score
//!    managers (carrying a unique [`RequestId`]); otherwise the
//!    newcomer is refused.
//!
//! Duplicate detection: the newcomer's score managers remember which
//! request admitted it. A second grant arriving for the same peer is
//! the §2 attack ("it is possible that both of them may agree to
//! introduce this peer") — the reputation is zeroed and the peer
//! flagged malicious. [`IntroductionBook`] owns all of this state.

use replend_types::id::RequestIdGen;
use replend_types::{PeerId, ProtocolError, RequestId, SimTime};
use std::collections::HashMap;

/// A not-yet-resolved introduction request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingIntro {
    /// Request id (unique; §2).
    pub request: RequestId,
    /// The arrival seeking admission.
    pub newcomer: PeerId,
    /// The member it asked.
    pub introducer: PeerId,
    /// The introducer's (already-made) willingness decision.
    pub willing: bool,
    /// When the request was made.
    pub requested_at: SimTime,
    /// When it may resolve (`requested_at + T`).
    pub resolve_at: SimTime,
}

/// Outcome of resolving a pending introduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntroOutcome {
    /// The introducer is willing; the lending layer must now check
    /// `minIntro` and perform the transfer.
    Willing {
        /// The resolved request.
        pending: PendingIntro,
    },
    /// The introducer declined.
    Declined {
        /// The resolved request.
        pending: PendingIntro,
    },
}

/// All introduction bookkeeping of one community.
#[derive(Debug, Default)]
pub struct IntroductionBook {
    ids: RequestIdGen,
    pending: HashMap<PeerId, PendingIntro>,
    /// newcomer → the request that admitted it (score managers'
    /// duplicate-detection memory).
    granted: HashMap<PeerId, RequestId>,
}

impl IntroductionBook {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of requests currently waiting out `T`.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The pending request of `newcomer`, if any.
    pub fn pending_for(&self, newcomer: PeerId) -> Option<&PendingIntro> {
        self.pending.get(&newcomer)
    }

    /// Files a new introduction request.
    ///
    /// Errors with [`ProtocolError::WaitingPeriodActive`] if the
    /// newcomer already has a request in flight — *"This protocol
    /// ensures that the new peer cannot send any more introduction
    /// requests before the waiting period is over."*
    pub fn request(
        &mut self,
        newcomer: PeerId,
        introducer: PeerId,
        willing: bool,
        now: SimTime,
        wait_period: u64,
    ) -> Result<PendingIntro, ProtocolError> {
        if self.pending.contains_key(&newcomer) {
            return Err(ProtocolError::WaitingPeriodActive { newcomer });
        }
        let pending = PendingIntro {
            request: self.ids.next_id(),
            newcomer,
            introducer,
            willing,
            requested_at: now,
            resolve_at: now + wait_period,
        };
        self.pending.insert(newcomer, pending);
        Ok(pending)
    }

    /// Resolves the pending request of `newcomer`.
    ///
    /// Returns `None` when there is no pending request or the waiting
    /// period has not yet elapsed.
    pub fn resolve(&mut self, newcomer: PeerId, now: SimTime) -> Option<IntroOutcome> {
        let pending = *self.pending.get(&newcomer)?;
        if now < pending.resolve_at {
            return None;
        }
        self.pending.remove(&newcomer);
        Some(if pending.willing {
            IntroOutcome::Willing { pending }
        } else {
            IntroOutcome::Declined { pending }
        })
    }

    /// Records that `request` admitted `newcomer`. Returns the §2
    /// duplicate-introduction error if another grant was already
    /// recorded — callers must then zero the peer's reputation and
    /// flag it malicious.
    pub fn record_grant(
        &mut self,
        newcomer: PeerId,
        request: RequestId,
    ) -> Result<(), ProtocolError> {
        if self.granted.contains_key(&newcomer) {
            return Err(ProtocolError::DuplicateIntroduction { newcomer });
        }
        self.granted.insert(newcomer, request);
        Ok(())
    }

    /// True if `newcomer` has been granted an introduction.
    pub fn is_granted(&self, newcomer: PeerId) -> bool {
        self.granted.contains_key(&newcomer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_resolve_happy_path() {
        let mut book = IntroductionBook::new();
        let p = book
            .request(PeerId(10), PeerId(1), true, SimTime(5), 1000)
            .unwrap();
        assert_eq!(p.resolve_at, SimTime(1005));
        assert_eq!(book.pending_count(), 1);
        assert!(book.pending_for(PeerId(10)).is_some());

        // Too early — the waiting period is absolute.
        assert_eq!(book.resolve(PeerId(10), SimTime(1004)), None);
        assert_eq!(book.pending_count(), 1);

        match book.resolve(PeerId(10), SimTime(1005)).unwrap() {
            IntroOutcome::Willing { pending } => {
                assert_eq!(pending.newcomer, PeerId(10));
                assert_eq!(pending.introducer, PeerId(1));
            }
            other => panic!("expected Willing, got {other:?}"),
        }
        assert_eq!(book.pending_count(), 0);
    }

    #[test]
    fn declined_resolution() {
        let mut book = IntroductionBook::new();
        book.request(PeerId(10), PeerId(1), false, SimTime(0), 10)
            .unwrap();
        match book.resolve(PeerId(10), SimTime(10)).unwrap() {
            IntroOutcome::Declined { pending } => {
                assert!(!pending.willing);
            }
            other => panic!("expected Declined, got {other:?}"),
        }
    }

    #[test]
    fn second_request_during_wait_is_rejected() {
        let mut book = IntroductionBook::new();
        book.request(PeerId(10), PeerId(1), true, SimTime(0), 1000)
            .unwrap();
        let err = book
            .request(PeerId(10), PeerId(2), true, SimTime(500), 1000)
            .unwrap_err();
        assert_eq!(
            err,
            ProtocolError::WaitingPeriodActive {
                newcomer: PeerId(10)
            }
        );
    }

    #[test]
    fn resolve_unknown_is_none() {
        let mut book = IntroductionBook::new();
        assert_eq!(book.resolve(PeerId(99), SimTime(10_000)), None);
    }

    #[test]
    fn request_ids_are_unique() {
        let mut book = IntroductionBook::new();
        let a = book
            .request(PeerId(1), PeerId(0), true, SimTime(0), 1)
            .unwrap();
        let b = book
            .request(PeerId(2), PeerId(0), true, SimTime(0), 1)
            .unwrap();
        assert_ne!(a.request, b.request);
    }

    #[test]
    fn duplicate_grant_detected() {
        // The §2 attack: two introducers both agree to introduce the
        // same newcomer (possible when it solicits a second intro
        // before the first response arrives). The score managers must
        // catch the second grant.
        let mut book = IntroductionBook::new();
        let r1 = book
            .request(PeerId(10), PeerId(1), true, SimTime(0), 10)
            .unwrap();
        assert!(book.resolve(PeerId(10), SimTime(10)).is_some());
        book.record_grant(PeerId(10), r1.request).unwrap();
        assert!(book.is_granted(PeerId(10)));

        let r2 = book
            .request(PeerId(10), PeerId(2), true, SimTime(100), 10)
            .unwrap();
        let err = book.record_grant(PeerId(10), r2.request).unwrap_err();
        assert_eq!(
            err,
            ProtocolError::DuplicateIntroduction {
                newcomer: PeerId(10)
            }
        );
    }

    #[test]
    fn grants_of_distinct_peers_are_independent() {
        let mut book = IntroductionBook::new();
        let a = book
            .request(PeerId(1), PeerId(0), true, SimTime(0), 1)
            .unwrap();
        let b = book
            .request(PeerId(2), PeerId(0), true, SimTime(0), 1)
            .unwrap();
        book.record_grant(PeerId(1), a.request).unwrap();
        book.record_grant(PeerId(2), b.request).unwrap();
        assert!(book.is_granted(PeerId(1)));
        assert!(book.is_granted(PeerId(2)));
    }

    #[test]
    fn resolution_after_wait_even_much_later() {
        let mut book = IntroductionBook::new();
        book.request(PeerId(1), PeerId(0), true, SimTime(0), 10)
            .unwrap();
        assert!(book.resolve(PeerId(1), SimTime(99_999)).is_some());
    }
}

//! # replend-dht
//!
//! A Chord-style structured overlay, built from scratch as the routing
//! and score-manager-selection substrate assumed by the paper:
//!
//! > *"We assume the existence of a structured overlay that uses
//! > distributed hash tables for routing and for selecting score
//! > managers that keep track of all feedback pertaining to a peer."*
//! > (§2)
//!
//! The overlay is simulated in-process: there are no sockets, and
//! "messages" are delivered instantly, exactly as in the paper's
//! simulator (§3). What *is* modelled faithfully:
//!
//! * a 64-bit identifier [`ring`](ring::Ring) with successor ownership,
//! * Chord [`finger-table`](routing) routing with real hop counts
//!   (O(log n) hops, verified by tests and benchmarked),
//! * [`score-manager selection`](managers) via salted replica hashing —
//!   the `numSM`-fold redundancy of §2,
//! * churn: joins and leaves emit [`HandoffEvent`]s so the reputation
//!   layer can migrate score state, and a crash model drops state to
//!   exercise the redundancy (*"redundancy is introduced in the system
//!   in case a score manager crashes"*, §2).
//!
//! ## Quick example
//!
//! ```
//! use replend_dht::ring::Ring;
//! use replend_types::PeerId;
//!
//! let mut ring = Ring::new();
//! for p in 0..16u64 {
//!     ring.join(PeerId(p).node_id());
//! }
//! // Every key has exactly one owner: its clockwise successor.
//! let key = PeerId(3).node_id();
//! let owner = ring.successor(key).unwrap();
//! assert!(ring.contains(owner));
//! ```

pub mod managers;
pub mod ring;
pub mod routing;
pub mod stabilize;

pub use managers::ManagerSet;
pub use ring::{HandoffEvent, Ring};
pub use routing::{RouteOutcome, Router};
pub use stabilize::Maintainer;

//! The identifier ring: membership, successor ownership, churn.
//!
//! The ring is the ground truth of the overlay. Each key (a 64-bit
//! [`NodeId`]) is *owned* by its clockwise successor among the live
//! nodes — the standard consistent-hashing rule Chord uses. Joins and
//! leaves shift ownership of a contiguous arc, which the ring reports
//! as a [`HandoffEvent`] so higher layers (the ROCQ score managers)
//! can migrate their per-key state.

use replend_types::NodeId;
use std::collections::BTreeMap;

/// Ownership transfer caused by churn.
///
/// After the event, every key in the half-open clockwise interval
/// `(range_start, range_end]` is owned by `to` instead of `from`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HandoffEvent {
    /// Previous owner (`None` when the ring was empty).
    pub from: Option<NodeId>,
    /// New owner.
    pub to: NodeId,
    /// Exclusive start of the transferred arc.
    pub range_start: NodeId,
    /// Inclusive end of the transferred arc.
    pub range_end: NodeId,
}

/// The membership view of a Chord-style ring.
///
/// Internally a `BTreeMap<NodeId, ()>` over live node ids; successor
/// queries are `O(log n)`. This structure is the *oracle* against
/// which the finger-table [`Router`](crate::routing::Router) is
/// validated.
#[derive(Clone, Debug, Default)]
pub struct Ring {
    nodes: BTreeMap<NodeId, ()>,
}

impl Ring {
    /// An empty ring.
    pub fn new() -> Self {
        Ring::default()
    }

    /// A ring over an already-known membership, without replaying the
    /// joins or computing handoffs — the checkpoint-restore path,
    /// where ownership state is restored separately. `BTreeMap`'s
    /// bulk construction makes this `O(n)` for sorted input (which is
    /// how checkpoints store the ring).
    pub fn from_sorted_nodes(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        Ring {
            nodes: nodes.into_iter().map(|n| (n, ())).collect(),
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes are live.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True if `node` is currently a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains_key(&node)
    }

    /// Iterates over live node ids in ring order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// The clockwise successor of `key` — the live node owning `key`.
    ///
    /// Returns `None` only when the ring is empty.
    pub fn successor(&self, key: NodeId) -> Option<NodeId> {
        self.nodes
            .range(key..)
            .next()
            .or_else(|| self.nodes.iter().next())
            .map(|(id, _)| *id)
    }

    /// The `k`-th distinct successor of `key` (0-based): the owner,
    /// then the next live node clockwise, and so on, wrapping.
    ///
    /// Returns `None` when the ring has fewer than `k + 1` nodes.
    pub fn successor_nth(&self, key: NodeId, k: usize) -> Option<NodeId> {
        if self.nodes.len() <= k {
            return None;
        }
        self.nodes
            .range(key..)
            .map(|(id, _)| *id)
            .chain(self.nodes.keys().copied())
            .nth(k)
    }

    /// The closest live predecessor of `node` (exclusive), i.e. the
    /// node counter-clockwise of it. `None` if `node` is the only
    /// member or the ring is empty.
    pub fn predecessor(&self, node: NodeId) -> Option<NodeId> {
        if self.nodes.len() < 2 && self.contains(node) {
            return None;
        }
        if self.nodes.is_empty() {
            return None;
        }
        self.nodes
            .range(..node)
            .next_back()
            .or_else(|| self.nodes.iter().next_back())
            .map(|(id, _)| *id)
            .filter(|p| *p != node)
    }

    /// Adds `node` to the ring, returning the ownership handoff the
    /// join causes: the new node takes over the arc
    /// `(predecessor, node]` from its successor.
    ///
    /// Joining an id that is already live is a no-op returning `None`.
    pub fn join(&mut self, node: NodeId) -> Option<HandoffEvent> {
        if self.contains(node) {
            return None;
        }
        self.nodes.insert(node, ());
        if self.nodes.len() == 1 {
            // First node owns the whole ring; nothing to hand off.
            return Some(HandoffEvent {
                from: None,
                to: node,
                range_start: node,
                range_end: node,
            });
        }
        let pred = self
            .predecessor(node)
            .expect("ring has >= 2 nodes, predecessor exists");
        let old_owner = self
            .successor(NodeId(node.raw().wrapping_add(1)))
            .expect("non-empty ring");
        Some(HandoffEvent {
            from: Some(old_owner),
            to: node,
            range_start: pred,
            range_end: node,
        })
    }

    /// Removes `node`, returning the handoff of its arc to its
    /// successor. Removing an unknown node is a no-op returning
    /// `None`; removing the last node empties the ring (also `None`,
    /// since there is no surviving owner).
    pub fn leave(&mut self, node: NodeId) -> Option<HandoffEvent> {
        if !self.contains(node) {
            return None;
        }
        let pred = self.predecessor(node);
        self.nodes.remove(&node);
        let heir = self.successor(node)?;
        Some(HandoffEvent {
            from: Some(node),
            to: heir,
            range_start: pred.unwrap_or(node),
            range_end: node,
        })
    }

    /// Collects all live nodes into a vector (ring order).
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use replend_types::PeerId;

    fn ring_of(ids: &[u64]) -> Ring {
        let mut r = Ring::new();
        for &i in ids {
            r.join(NodeId(i));
        }
        r
    }

    #[test]
    fn empty_ring_has_no_successor() {
        assert_eq!(Ring::new().successor(NodeId(0)), None);
    }

    #[test]
    fn single_node_owns_everything() {
        let r = ring_of(&[100]);
        assert_eq!(r.successor(NodeId(0)), Some(NodeId(100)));
        assert_eq!(r.successor(NodeId(100)), Some(NodeId(100)));
        assert_eq!(r.successor(NodeId(101)), Some(NodeId(100)), "wraps");
    }

    #[test]
    fn successor_basic() {
        let r = ring_of(&[10, 20, 30]);
        assert_eq!(r.successor(NodeId(5)), Some(NodeId(10)));
        assert_eq!(r.successor(NodeId(10)), Some(NodeId(10)));
        assert_eq!(r.successor(NodeId(11)), Some(NodeId(20)));
        assert_eq!(r.successor(NodeId(31)), Some(NodeId(10)), "wraps past max");
    }

    #[test]
    fn successor_nth_walks_clockwise() {
        let r = ring_of(&[10, 20, 30]);
        assert_eq!(r.successor_nth(NodeId(5), 0), Some(NodeId(10)));
        assert_eq!(r.successor_nth(NodeId(5), 1), Some(NodeId(20)));
        assert_eq!(r.successor_nth(NodeId(5), 2), Some(NodeId(30)));
        assert_eq!(r.successor_nth(NodeId(5), 3), None, "only 3 nodes");
        assert_eq!(r.successor_nth(NodeId(25), 1), Some(NodeId(10)), "wraps");
    }

    #[test]
    fn predecessor_basic() {
        let r = ring_of(&[10, 20, 30]);
        assert_eq!(r.predecessor(NodeId(20)), Some(NodeId(10)));
        assert_eq!(r.predecessor(NodeId(10)), Some(NodeId(30)), "wraps");
        assert_eq!(ring_of(&[10]).predecessor(NodeId(10)), None);
    }

    #[test]
    fn join_reports_arc_from_successor() {
        let mut r = ring_of(&[10, 30]);
        let ev = r.join(NodeId(20)).unwrap();
        // 20 takes (10, 20] from 30.
        assert_eq!(ev.from, Some(NodeId(30)));
        assert_eq!(ev.to, NodeId(20));
        assert_eq!(ev.range_start, NodeId(10));
        assert_eq!(ev.range_end, NodeId(20));
    }

    #[test]
    fn duplicate_join_is_noop() {
        let mut r = ring_of(&[10]);
        assert!(r.join(NodeId(10)).is_none());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn leave_reports_arc_to_successor() {
        let mut r = ring_of(&[10, 20, 30]);
        let ev = r.leave(NodeId(20)).unwrap();
        assert_eq!(ev.from, Some(NodeId(20)));
        assert_eq!(ev.to, NodeId(30));
        assert_eq!(ev.range_start, NodeId(10));
        assert_eq!(ev.range_end, NodeId(20));
        assert!(!r.contains(NodeId(20)));
    }

    #[test]
    fn leave_unknown_is_noop() {
        let mut r = ring_of(&[10]);
        assert!(r.leave(NodeId(99)).is_none());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn leave_last_node_empties_ring() {
        let mut r = ring_of(&[10]);
        assert!(r.leave(NodeId(10)).is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn join_then_leave_restores_ownership() {
        let mut r = ring_of(&[10, 30]);
        let before: Vec<_> = (0..40).map(|k| r.successor(NodeId(k))).collect();
        r.join(NodeId(20));
        r.leave(NodeId(20));
        let after: Vec<_> = (0..40).map(|k| r.successor(NodeId(k))).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn peer_node_ids_spread_over_ring() {
        // Sequential peer ids must not cluster on the ring, otherwise
        // score-manager load would be skewed.
        let mut r = Ring::new();
        for p in 0..128u64 {
            r.join(PeerId(p).node_id());
        }
        assert_eq!(r.len(), 128, "no collisions among 128 peers");
        // Max gap should be far below the whole ring: with 128 random
        // points the expected max arc is ~ (ln 128 / 128) of the ring.
        let ids = r.to_vec();
        let mut max_gap = 0u64;
        for w in ids.windows(2) {
            max_gap = max_gap.max(w[0].distance_to(w[1]));
        }
        max_gap = max_gap.max(ids[ids.len() - 1].distance_to(ids[0]));
        assert!(
            max_gap < u64::MAX / 8,
            "max arc {max_gap:x} suspiciously large"
        );
    }

    proptest! {
        /// The successor function equals the naive definition.
        #[test]
        fn successor_matches_naive(
            ids in proptest::collection::btree_set(proptest::num::u64::ANY, 1..64),
            key in proptest::num::u64::ANY,
        ) {
            let r = ring_of(&ids.iter().copied().collect::<Vec<_>>());
            let naive = ids
                .iter()
                .copied()
                .filter(|&n| n >= key)
                .min()
                .or_else(|| ids.iter().copied().min())
                .map(NodeId);
            prop_assert_eq!(r.successor(NodeId(key)), naive);
        }

        /// successor_nth yields k distinct nodes in clockwise order.
        #[test]
        fn successor_nth_distinct(
            ids in proptest::collection::btree_set(proptest::num::u64::ANY, 3..32),
            key in proptest::num::u64::ANY,
        ) {
            let r = ring_of(&ids.iter().copied().collect::<Vec<_>>());
            let n = ids.len().min(6);
            let got: Vec<_> = (0..n).map(|k| r.successor_nth(NodeId(key), k).unwrap()).collect();
            let mut dedup = got.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), got.len(), "successors must be distinct");
        }

        /// Join handoff invariant: after a join, every key in the
        /// reported arc is owned by the new node.
        #[test]
        fn join_handoff_is_sound(
            ids in proptest::collection::btree_set(proptest::num::u64::ANY, 2..32),
            newcomer in proptest::num::u64::ANY,
            probes in proptest::collection::vec(proptest::num::u64::ANY, 8),
        ) {
            let mut r = ring_of(&ids.iter().copied().collect::<Vec<_>>());
            prop_assume!(!r.contains(NodeId(newcomer)));
            let ev = r.join(NodeId(newcomer)).unwrap();
            for p in probes {
                let key = NodeId(p);
                if key.in_interval(ev.range_start, ev.range_end) {
                    prop_assert_eq!(r.successor(key), Some(ev.to));
                }
            }
        }

        /// Leave handoff invariant: after a leave, every key in the
        /// reported arc is owned by the heir.
        #[test]
        fn leave_handoff_is_sound(
            ids in proptest::collection::btree_set(proptest::num::u64::ANY, 3..32),
            probes in proptest::collection::vec(proptest::num::u64::ANY, 8),
        ) {
            let list: Vec<u64> = ids.iter().copied().collect();
            let mut r = ring_of(&list);
            let leaver = NodeId(list[list.len() / 2]);
            let ev = r.leave(leaver).unwrap();
            for p in probes {
                let key = NodeId(p);
                if key.in_interval(ev.range_start, ev.range_end) {
                    prop_assert_eq!(r.successor(key), Some(ev.to));
                }
            }
        }
    }
}

//! Score-manager selection.
//!
//! §2: each peer has `numSM` *score managers* — overlay nodes selected
//! through the DHT — that keep all feedback pertaining to the peer.
//! Replica `i` of peer `p` lives at the ring key `salted(p, i)`; the
//! manager is that key's successor. Using independent salted keys
//! (rather than the successor list of a single key) spreads a peer's
//! managers across the whole ring, which is what makes the redundancy
//! meaningful: *"Since each score manager of the introducer sends
//! messages to each score manager of the new peer, redundancy is
//! introduced in the system in case a score manager crashes"* (§2).

use crate::ring::Ring;
use replend_types::hash::salted;
use replend_types::{NodeId, PeerId};

/// The replica key of peer `peer`'s `i`-th score manager.
#[inline]
pub fn replica_key(peer: PeerId, i: usize) -> NodeId {
    NodeId(salted(peer.raw(), i as u64))
}

/// The set of score managers responsible for one peer, in replica
/// order.
///
/// Managers are *distinct* nodes whenever the ring has at least
/// `num_sm` members: when two replica keys land on the same owner, the
/// later replica walks clockwise to the next unused node. This mirrors
/// deployed DHT replication (distinctness is required for the crash
/// redundancy to help) and keeps the Table-1 default of 6 managers
/// meaningful even on the initial 500-node ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManagerSet {
    peer: PeerId,
    managers: Vec<NodeId>,
}

impl ManagerSet {
    /// Computes the manager set of `peer` on the current ring.
    ///
    /// Returns `None` when the ring is empty. When the ring has fewer
    /// than `num_sm` nodes, all live nodes are returned (every node
    /// manages everyone — the degenerate but correct small-ring case).
    pub fn select(ring: &Ring, peer: PeerId, num_sm: usize) -> Option<ManagerSet> {
        if ring.is_empty() || num_sm == 0 {
            return None;
        }
        let want = num_sm.min(ring.len());
        let mut managers: Vec<NodeId> = Vec::with_capacity(want);
        for i in 0..num_sm {
            if managers.len() == want {
                break;
            }
            let key = replica_key(peer, i);
            // Walk clockwise from the replica key until we find a node
            // not already selected. Bounded by ring size.
            for k in 0..ring.len() {
                let candidate = ring.successor_nth(key, k)?;
                if !managers.contains(&candidate) {
                    managers.push(candidate);
                    break;
                }
            }
        }
        debug_assert_eq!(managers.len(), want);
        Some(ManagerSet { peer, managers })
    }

    /// The peer this set manages.
    pub fn peer(&self) -> PeerId {
        self.peer
    }

    /// The manager nodes, in replica order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.managers
    }

    /// Number of managers.
    pub fn len(&self) -> usize {
        self.managers.len()
    }

    /// True when no managers were selected (never produced by
    /// [`ManagerSet::select`] on a non-empty ring).
    pub fn is_empty(&self) -> bool {
        self.managers.is_empty()
    }

    /// True if `node` manages this peer.
    pub fn contains(&self, node: NodeId) -> bool {
        self.managers.contains(&node)
    }

    /// How many managers two selections share — used by churn tests to
    /// check assignment stability.
    pub fn overlap(&self, other: &ManagerSet) -> usize {
        self.managers
            .iter()
            .filter(|m| other.managers.contains(m))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ring_of_peers(n: u64) -> Ring {
        let mut r = Ring::new();
        for p in 0..n {
            r.join(PeerId(p).node_id());
        }
        r
    }

    #[test]
    fn empty_ring_selects_nothing() {
        assert!(ManagerSet::select(&Ring::new(), PeerId(0), 6).is_none());
    }

    #[test]
    fn zero_managers_selects_nothing() {
        assert!(ManagerSet::select(&ring_of_peers(10), PeerId(0), 0).is_none());
    }

    #[test]
    fn selects_requested_count_when_ring_large_enough() {
        let ring = ring_of_peers(500);
        let set = ManagerSet::select(&ring, PeerId(3), 6).unwrap();
        assert_eq!(set.len(), 6);
        assert!(!set.is_empty());
        assert_eq!(set.peer(), PeerId(3));
    }

    #[test]
    fn managers_are_distinct() {
        let ring = ring_of_peers(50);
        for p in 0..50u64 {
            let set = ManagerSet::select(&ring, PeerId(p), 6).unwrap();
            let mut nodes = set.nodes().to_vec();
            nodes.sort();
            nodes.dedup();
            assert_eq!(nodes.len(), set.len(), "peer {p} got duplicate managers");
        }
    }

    #[test]
    fn small_ring_returns_all_nodes() {
        let ring = ring_of_peers(3);
        let set = ManagerSet::select(&ring, PeerId(0), 6).unwrap();
        assert_eq!(set.len(), 3, "ring smaller than numSM: all nodes manage");
    }

    #[test]
    fn selection_is_deterministic() {
        let ring = ring_of_peers(100);
        let a = ManagerSet::select(&ring, PeerId(17), 6).unwrap();
        let b = ManagerSet::select(&ring, PeerId(17), 6).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_peers_get_different_sets() {
        // Not guaranteed pairwise-distinct, but across 20 peers on a
        // 500-node ring, sets should not all coincide.
        let ring = ring_of_peers(500);
        let first = ManagerSet::select(&ring, PeerId(0), 6).unwrap();
        let all_same = (1..20u64)
            .all(|p| ManagerSet::select(&ring, PeerId(p), 6).unwrap().nodes() == first.nodes());
        assert!(!all_same);
    }

    #[test]
    fn churn_moves_few_assignments() {
        // One join on a 200-node ring should change at most a couple
        // of a peer's managers — the stability that makes "the score
        // managers assigned to a peer change over time" (§3)
        // tolerable with numSM-fold redundancy.
        let mut ring = ring_of_peers(200);
        let before = ManagerSet::select(&ring, PeerId(42), 6).unwrap();
        ring.join(PeerId(10_000).node_id());
        let after = ManagerSet::select(&ring, PeerId(42), 6).unwrap();
        assert!(
            before.overlap(&after) >= 5,
            "one join displaced more than one manager: {} kept",
            before.overlap(&after)
        );
    }

    #[test]
    fn manager_load_is_balanced() {
        // Count how many peers each node manages; on a 300-node ring
        // with 300 peers and 6 replicas the mean load is 6. No node
        // should carry a pathological multiple of that.
        let n = 300u64;
        let ring = ring_of_peers(n);
        let mut load: std::collections::HashMap<NodeId, usize> = Default::default();
        for p in 0..n {
            for m in ManagerSet::select(&ring, PeerId(p), 6).unwrap().nodes() {
                *load.entry(*m).or_default() += 1;
            }
        }
        let max = load.values().copied().max().unwrap();
        // Without virtual nodes, consistent hashing concentrates load
        // on whoever owns the largest arc: E[max arc] ≈ ln(n)/n of the
        // ring, i.e. ≈ ln(300) ≈ 5.7× the mean, and the tail reaches
        // ~8×. Assert the load stays within the O(log n) envelope.
        assert!(max <= 6 * 10, "hottest manager holds {max} assignments");
    }

    #[test]
    fn contains_matches_nodes() {
        let ring = ring_of_peers(50);
        let set = ManagerSet::select(&ring, PeerId(1), 4).unwrap();
        for m in set.nodes() {
            assert!(set.contains(*m));
        }
        assert!(!set.contains(NodeId(0x1234_5678)));
    }

    proptest! {
        /// Selection always yields min(num_sm, ring size) distinct live
        /// nodes.
        #[test]
        fn selection_invariants(
            ring_size in 1u64..64,
            peer in proptest::num::u64::ANY,
            num_sm in 1usize..10,
        ) {
            let ring = ring_of_peers(ring_size);
            let set = ManagerSet::select(&ring, PeerId(peer), num_sm).unwrap();
            prop_assert_eq!(set.len(), num_sm.min(ring_size as usize));
            let mut nodes = set.nodes().to_vec();
            nodes.sort();
            nodes.dedup();
            prop_assert_eq!(nodes.len(), set.len());
            for m in set.nodes() {
                prop_assert!(ring.contains(*m));
            }
        }

        /// Replica keys are deterministic and distinct per replica.
        #[test]
        fn replica_keys_distinct(peer in proptest::num::u64::ANY) {
            let keys: Vec<NodeId> = (0..6).map(|i| replica_key(PeerId(peer), i)).collect();
            let mut dedup = keys.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), keys.len());
        }
    }
}

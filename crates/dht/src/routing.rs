//! Chord finger-table routing.
//!
//! The [`Ring`](crate::ring::Ring) answers "who owns key k" in one
//! oracle step; real Chord answers it by greedy clockwise hops through
//! *finger tables*. This module implements the real protocol so that
//! (a) lookup costs are measurable (the `dht_lookup` bench reports the
//! O(log n) hop counts) and (b) tests can cross-validate the routed
//! owner against the oracle — the correctness argument for using the
//! oracle on the simulator's hot path.

use crate::ring::Ring;
use replend_types::NodeId;
use std::collections::HashMap;

/// Result of routing a key from a start node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RouteOutcome {
    /// The node that owns the key.
    pub owner: NodeId,
    /// Number of overlay hops taken (0 when the start node's
    /// immediate successor owns the key).
    pub hops: u32,
}

/// Per-node finger tables plus the greedy routing procedure.
#[derive(Clone, Debug, Default)]
pub struct Router {
    /// `fingers[n][k]` = the live node succeeding `n + 2^k`, as of the
    /// last refresh. Stale entries are tolerated by the routing loop.
    fingers: HashMap<NodeId, Vec<NodeId>>,
}

impl Router {
    /// An empty router with no finger state.
    pub fn new() -> Self {
        Router::default()
    }

    /// Builds exact finger tables for every live node.
    pub fn build(ring: &Ring) -> Self {
        let mut router = Router::new();
        for node in ring.iter() {
            router.refresh_node(ring, node);
        }
        router
    }

    /// Recomputes the finger table of one node (Chord's `fix_fingers`
    /// run to completion).
    pub fn refresh_node(&mut self, ring: &Ring, node: NodeId) {
        if !ring.contains(node) {
            self.fingers.remove(&node);
            return;
        }
        let mut table = Vec::with_capacity(NodeId::BITS as usize);
        for k in 0..NodeId::BITS {
            let target = node.finger_target(k);
            // Ring is non-empty (it contains `node`).
            let f = ring.successor(target).expect("non-empty ring");
            table.push(f);
        }
        self.fingers.insert(node, table);
    }

    /// Forgets a departed node's state.
    pub fn forget_node(&mut self, node: NodeId) {
        self.fingers.remove(&node);
    }

    /// Drops finger state of every node no longer in the ring
    /// (bulk cleanup used at maintenance-cycle boundaries).
    pub fn retain_live(&mut self, ring: &Ring) {
        self.fingers.retain(|node, _| ring.contains(*node));
    }

    /// Number of nodes with finger state.
    pub fn len(&self) -> usize {
        self.fingers.len()
    }

    /// True if no finger state exists.
    pub fn is_empty(&self) -> bool {
        self.fingers.is_empty()
    }

    /// The closest finger of `node` that *strictly precedes* `key`
    /// clockwise and is still alive, if any improves on `node` itself.
    fn closest_preceding_live_finger(
        &self,
        ring: &Ring,
        node: NodeId,
        key: NodeId,
    ) -> Option<NodeId> {
        let table = self.fingers.get(&node)?;
        // Walk fingers from farthest to nearest, classic Chord.
        for &f in table.iter().rev() {
            if f != node && ring.contains(f) && f.in_interval(node, key) && f != key {
                // `f` is in (node, key): jumping there strictly
                // shrinks the remaining clockwise distance.
                if node.distance_to(f) < node.distance_to(key) {
                    return Some(f);
                }
            }
        }
        None
    }

    /// Routes `key` starting from `from`, using finger tables with a
    /// successor-step fallback (so stale tables degrade to O(n), never
    /// to nontermination).
    ///
    /// Returns `None` when the ring is empty or `from` is dead.
    pub fn route(&self, ring: &Ring, from: NodeId, key: NodeId) -> Option<RouteOutcome> {
        if ring.is_empty() || !ring.contains(from) {
            return None;
        }
        let owner = ring.successor(key).expect("non-empty ring");
        let mut current = from;
        let mut hops = 0u32;
        // Hard bound: finger hops are ≤ 64; successor-fallback hops
        // are ≤ ring size. Anything beyond that is a logic error.
        let max_hops = NodeId::BITS + ring.len() as u32 + 1;
        loop {
            let succ = ring
                .successor(NodeId(current.raw().wrapping_add(1)))
                .expect("non-empty ring");
            if key.in_interval(current, succ) || current == owner {
                return Some(RouteOutcome { owner, hops });
            }
            let next = self
                .closest_preceding_live_finger(ring, current, key)
                .unwrap_or(succ);
            current = next;
            hops += 1;
            if hops > max_hops {
                // Defensive: should be unreachable; fail loudly in
                // debug, degrade to the oracle answer in release.
                debug_assert!(false, "routing exceeded hop bound");
                return Some(RouteOutcome { owner, hops });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use replend_types::hash::splitmix64;

    fn ring_of(ids: &[u64]) -> Ring {
        let mut r = Ring::new();
        for &i in ids {
            r.join(NodeId(i));
        }
        r
    }

    #[test]
    fn route_on_singleton_ring() {
        let ring = ring_of(&[42]);
        let router = Router::build(&ring);
        let out = router.route(&ring, NodeId(42), NodeId(7)).unwrap();
        assert_eq!(out.owner, NodeId(42));
        assert_eq!(out.hops, 0);
    }

    #[test]
    fn route_from_dead_node_is_none() {
        let ring = ring_of(&[1, 2]);
        let router = Router::build(&ring);
        assert!(router.route(&ring, NodeId(99), NodeId(7)).is_none());
    }

    #[test]
    fn route_matches_oracle_small_ring() {
        let ids = [10u64, 20, 30, 40, 50];
        let ring = ring_of(&ids);
        let router = Router::build(&ring);
        for start in ids {
            for key in 0..60u64 {
                let out = router.route(&ring, NodeId(start), NodeId(key)).unwrap();
                assert_eq!(Some(out.owner), ring.successor(NodeId(key)));
            }
        }
    }

    #[test]
    fn hops_are_logarithmic_on_random_ring() {
        let mut rng = StdRng::seed_from_u64(7);
        let ids: Vec<u64> = (0..512u64).map(splitmix64).collect();
        let ring = ring_of(&ids);
        let router = Router::build(&ring);
        let mut total_hops = 0u64;
        let trials = 500;
        for _ in 0..trials {
            let from = NodeId(ids[rng.gen_range(0..ids.len())]);
            let key = NodeId(rng.gen::<u64>());
            let out = router.route(&ring, from, key).unwrap();
            assert_eq!(Some(out.owner), ring.successor(key));
            total_hops += out.hops as u64;
        }
        let mean = total_hops as f64 / trials as f64;
        // Chord expectation: ~ (1/2) log2 n = 4.5 hops at n = 512.
        // Allow generous slack; the point is "not O(n)".
        assert!(mean < 12.0, "mean hops {mean} too high for n=512");
        assert!(mean > 1.0, "mean hops {mean} implausibly low");
    }

    #[test]
    fn stale_fingers_still_terminate_and_find_owner() {
        // Build fingers, then churn the ring *without* refreshing.
        let ids: Vec<u64> = (0..64u64).map(splitmix64).collect();
        let mut ring = ring_of(&ids);
        let router = Router::build(&ring);
        // Kill a third of the nodes.
        for &id in ids.iter().step_by(3) {
            ring.leave(NodeId(id));
        }
        let survivors: Vec<u64> = ring.iter().map(|n| n.raw()).collect();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let from = NodeId(survivors[rng.gen_range(0..survivors.len())]);
            let key = NodeId(rng.gen::<u64>());
            let out = router.route(&ring, from, key).unwrap();
            assert_eq!(Some(out.owner), ring.successor(key));
        }
    }

    #[test]
    fn refresh_after_leave_forgets_node() {
        let mut ring = ring_of(&[1, 2, 3]);
        let mut router = Router::build(&ring);
        ring.leave(NodeId(2));
        router.refresh_node(&ring, NodeId(2));
        assert_eq!(router.len(), 2);
    }

    #[test]
    fn forget_node_removes_state() {
        let ring = ring_of(&[1, 2]);
        let mut router = Router::build(&ring);
        router.forget_node(NodeId(1));
        assert_eq!(router.len(), 1);
        assert!(!router.is_empty());
    }

    proptest! {
        /// Routed owner always equals the oracle successor, from any
        /// live start node, for any key, on any ring.
        #[test]
        fn route_equals_oracle(
            ids in proptest::collection::btree_set(proptest::num::u64::ANY, 1..48),
            key in proptest::num::u64::ANY,
            start_sel in proptest::num::usize::ANY,
        ) {
            let list: Vec<u64> = ids.iter().copied().collect();
            let ring = ring_of(&list);
            let router = Router::build(&ring);
            let from = NodeId(list[start_sel % list.len()]);
            let out = router.route(&ring, from, NodeId(key)).unwrap();
            prop_assert_eq!(Some(out.owner), ring.successor(NodeId(key)));
            prop_assert!(out.hops <= NodeId::BITS + list.len() as u32 + 1);
        }

        /// Even after arbitrary un-refreshed churn, routing terminates
        /// with the correct owner.
        #[test]
        fn route_survives_unrefreshed_churn(
            ids in proptest::collection::btree_set(proptest::num::u64::ANY, 8..40),
            kill in proptest::collection::vec(proptest::num::usize::ANY, 1..8),
            key in proptest::num::u64::ANY,
        ) {
            let list: Vec<u64> = ids.iter().copied().collect();
            let mut ring = ring_of(&list);
            let router = Router::build(&ring);
            for k in kill {
                let victims: Vec<NodeId> = ring.iter().collect();
                if victims.len() <= 2 { break; }
                ring.leave(victims[k % victims.len()]);
            }
            let survivors: Vec<NodeId> = ring.iter().collect();
            let from = survivors[0];
            let out = router.route(&ring, from, NodeId(key)).unwrap();
            prop_assert_eq!(Some(out.owner), ring.successor(NodeId(key)));
        }
    }
}

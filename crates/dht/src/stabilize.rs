//! Incremental overlay maintenance (Chord's `stabilize` /
//! `fix_fingers` loop).
//!
//! [`Router::build`](crate::routing::Router::build) computes exact
//! finger tables, but a real overlay never has them: nodes refresh a
//! few fingers per maintenance round while churn keeps invalidating
//! them. [`Maintainer`] reproduces that behaviour — a round-robin
//! scheduler that refreshes `budget` node tables per round — so the
//! routing tests and benches can measure lookup quality as a function
//! of maintenance effort, the trade-off any deployment of the paper's
//! score-manager overlay would face.

use crate::ring::Ring;
use crate::routing::Router;
use replend_types::NodeId;

/// Round-robin finger-table maintenance.
#[derive(Clone, Debug)]
pub struct Maintainer {
    /// Nodes in refresh order (snapshot, lazily repaired).
    queue: Vec<NodeId>,
    /// Next queue position.
    cursor: usize,
    /// Node tables refreshed per round.
    budget: usize,
    /// Total refreshes performed.
    refreshed: u64,
}

impl Maintainer {
    /// A maintainer refreshing `budget` node tables per round.
    ///
    /// # Panics
    /// If `budget` is zero.
    pub fn new(budget: usize) -> Self {
        assert!(budget > 0, "maintenance budget must be positive");
        Maintainer {
            queue: Vec::new(),
            cursor: 0,
            budget,
            refreshed: 0,
        }
    }

    /// Total refreshes performed so far.
    pub fn refreshed(&self) -> u64 {
        self.refreshed
    }

    /// Runs one maintenance round: refreshes up to `budget` live
    /// nodes' finger tables, cycling through the membership.
    ///
    /// Dead nodes encountered in the (stale) queue are dropped from
    /// the router and skipped without consuming budget.
    pub fn round(&mut self, ring: &Ring, router: &mut Router) {
        if ring.is_empty() {
            self.queue.clear();
            self.cursor = 0;
            return;
        }
        // Re-snapshot when the cycle completes (or first use), so
        // joins become visible to maintenance — and purge router
        // state of nodes that departed since the last snapshot.
        if self.cursor >= self.queue.len() {
            // Refill in place: reuses the queue's allocation instead
            // of building a fresh `Ring::to_vec` every cycle.
            self.queue.clear();
            self.queue.extend(ring.iter());
            self.cursor = 0;
            router.retain_live(ring);
        }
        let mut done = 0;
        while done < self.budget && self.cursor < self.queue.len() {
            let node = self.queue[self.cursor];
            self.cursor += 1;
            if ring.contains(node) {
                router.refresh_node(ring, node);
                self.refreshed += 1;
                done += 1;
            } else {
                router.forget_node(node);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use replend_types::hash::splitmix64;
    use replend_types::PeerId;

    fn ring_of(n: u64) -> Ring {
        let mut ring = Ring::new();
        for p in 0..n {
            ring.join(PeerId(p).node_id());
        }
        ring
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        Maintainer::new(0);
    }

    #[test]
    fn empty_ring_round_is_noop() {
        let ring = Ring::new();
        let mut router = Router::new();
        let mut m = Maintainer::new(4);
        m.round(&ring, &mut router);
        assert_eq!(m.refreshed(), 0);
    }

    #[test]
    fn full_cycle_refreshes_every_node() {
        let ring = ring_of(20);
        let mut router = Router::new();
        let mut m = Maintainer::new(6);
        // 20 nodes at 6/round: 4 rounds cover the cycle.
        for _ in 0..4 {
            m.round(&ring, &mut router);
        }
        assert_eq!(m.refreshed(), 20);
        assert_eq!(router.len(), 20);
    }

    #[test]
    fn departed_nodes_are_forgotten_without_consuming_budget() {
        let mut ring = ring_of(10);
        let mut router = Router::build(&ring);
        let mut m = Maintainer::new(10);
        m.round(&ring, &mut router); // snapshot taken, full refresh
                                     // Kill half, then run the next cycle.
        let victims: Vec<NodeId> = ring.iter().take(5).collect();
        for v in &victims {
            ring.leave(*v);
        }
        m.round(&ring, &mut router);
        m.round(&ring, &mut router);
        for v in victims {
            assert!(!ring.contains(v));
        }
        assert_eq!(router.len(), 5, "router holds only live nodes");
    }

    #[test]
    fn maintenance_restores_routing_quality_after_churn() {
        // Build exact tables, churn heavily, route (stale, more
        // hops), maintain to convergence, route again (fewer hops).
        let mut rng = StdRng::seed_from_u64(55);
        let ids: Vec<u64> = (0..256u64).map(splitmix64).collect();
        let mut ring = Ring::new();
        for &i in &ids {
            ring.join(NodeId(i));
        }
        let mut router = Router::build(&ring);
        // Churn: 128 leaves + 128 new joins, un-refreshed.
        for &i in ids.iter().take(128) {
            ring.leave(NodeId(i));
        }
        for p in 1_000..1_128u64 {
            ring.join(PeerId(p).node_id());
        }
        let survivors: Vec<NodeId> = ring.iter().collect();
        let hops = |router: &Router, rng: &mut StdRng| {
            let mut total = 0u64;
            for _ in 0..300 {
                let from = survivors[rng.gen_range(0..survivors.len())];
                let key = NodeId(rng.gen());
                total += router.route(&ring, from, key).unwrap().hops as u64;
            }
            total as f64 / 300.0
        };
        let stale = hops(&router, &mut rng);
        let mut m = Maintainer::new(64);
        for _ in 0..12 {
            m.round(&ring, &mut router);
        }
        let fresh = hops(&router, &mut rng);
        assert!(
            fresh <= stale,
            "maintenance must not worsen routing: stale {stale}, fresh {fresh}"
        );
        assert!(
            fresh < 10.0,
            "fresh tables should give O(log n) hops: {fresh}"
        );
    }

    #[test]
    fn new_joins_become_visible_on_next_cycle() {
        let mut ring = ring_of(4);
        let mut router = Router::new();
        let mut m = Maintainer::new(100);
        m.round(&ring, &mut router);
        assert_eq!(router.len(), 4);
        ring.join(PeerId(99).node_id());
        m.round(&ring, &mut router); // new snapshot includes the join
        assert_eq!(router.len(), 5);
    }
}

//! Cross-process cluster integration: the real `replend` binary,
//! real `worker` children, real pipes — pinning the tentpole
//! guarantee that `run --workers N` output is **byte-identical** to
//! the in-process `--communities K` run.

use std::process::{Command, Output, Stdio};

fn replend(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_replend"))
        .args(args)
        .output()
        .expect("failed to run the replend binary")
}

const SMOKE: &[&str] = &[
    "run",
    "--ticks",
    "1500",
    "--num-init",
    "40",
    "--lambda",
    "0.02",
    "--seed",
    "3",
    "--communities",
    "3",
    "--histogram",
    "4",
    "--sample",
    "500",
];

#[test]
fn workers_output_is_byte_identical_to_in_process() {
    let in_process = replend(SMOKE);
    assert!(in_process.status.success(), "{in_process:?}");
    assert!(!in_process.stdout.is_empty());

    for workers in ["2", "3"] {
        let mut args = SMOKE.to_vec();
        args.extend(["--workers", workers]);
        let subprocess = replend(&args);
        assert!(subprocess.status.success(), "{subprocess:?}");
        assert_eq!(
            String::from_utf8_lossy(&subprocess.stdout),
            String::from_utf8_lossy(&in_process.stdout),
            "--workers {workers} diverged from the in-process run"
        );
        assert_eq!(subprocess.stdout, in_process.stdout, "byte-level diff");
    }
}

#[test]
fn worker_subcommand_with_empty_stdin_is_a_clean_noop() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_replend"))
        .arg("worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn replend worker");
    drop(child.stdin.take()); // immediate EOF: no jobs
    let out = child.wait_with_output().expect("wait for worker");
    assert!(out.status.success(), "{out:?}");
    assert!(out.stdout.is_empty(), "no jobs, no summaries");
}

/// The mid-stream-failure regression (ISSUE 6): a worker that emits a
/// garbage frame and then hangs must be killed and reaped — not left
/// running behind a deadlocked `wait` — and whatever it wrote to
/// stderr must surface in the coordinator's error.
#[test]
fn misbehaving_worker_is_killed_reaped_and_its_stderr_surfaces() {
    use replend_core::community::CommunityBuilder;
    use replend_core::worker::{SubprocessWorker, Worker, WorkerJob};
    use replend_types::Table1;

    // A fake worker: complains on stderr, emits a framed payload that
    // cannot decode, then blocks forever. Decoding fails mid-stream,
    // so without the kill-on-error path the child would sleep out its
    // 10 minutes while `run` waits on it. The sleep runs as a
    // *forked descendant* (`& wait` defeats dash's exec-the-last-
    // command optimisation) so it survives the kill of the direct
    // child while holding the pipe write ends open — the worst case:
    // the coordinator must still return promptly with the stderr
    // tail it captured, not block awaiting a pipe EOF that only the
    // orphan can deliver.
    let script = "echo boom-worker-stderr >&2; printf '\\004\\000\\000\\000ABCD'; sleep 600 & wait";
    let mut worker = SubprocessWorker::with_args("/bin/sh", vec!["-c".into(), script.into()]);

    let builder = CommunityBuilder::new(
        Table1::paper_defaults()
            .with_num_init(10)
            .with_num_trans(100),
    );
    let mut job = WorkerJob::from_builder(&builder, 9, vec![0]);
    job.ticks = 100;

    let start = std::time::Instant::now();
    let err = worker.run(&job).expect_err("garbage frame must fail");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(60),
        "the sleeping child was killed and reaped, not waited out"
    );
    let msg = err.to_string();
    assert!(
        msg.contains("boom-worker-stderr"),
        "captured stderr must ride along in the error: {msg}"
    );
}

#[test]
fn worker_subcommand_rejects_garbage_frames() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_replend"))
        .arg("worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn replend worker");
    {
        use std::io::Write as _;
        let mut stdin = child.stdin.take().expect("stdin piped");
        // A framed payload that is not a valid envelope.
        let garbage = [4u8, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef];
        stdin.write_all(&garbage).expect("write garbage");
    }
    let out = child.wait_with_output().expect("wait for worker");
    assert!(!out.status.success(), "garbage must fail the session");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("worker session failed"), "{stderr}");
}

//! Cross-process cluster integration: the real `replend` binary,
//! real `worker` children, real pipes — pinning the tentpole
//! guarantee that `run --workers N` output is **byte-identical** to
//! the in-process `--communities K` run.

use std::process::{Command, Output, Stdio};

fn replend(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_replend"))
        .args(args)
        .output()
        .expect("failed to run the replend binary")
}

const SMOKE: &[&str] = &[
    "run",
    "--ticks",
    "1500",
    "--num-init",
    "40",
    "--lambda",
    "0.02",
    "--seed",
    "3",
    "--communities",
    "3",
    "--histogram",
    "4",
    "--sample",
    "500",
];

#[test]
fn workers_output_is_byte_identical_to_in_process() {
    let in_process = replend(SMOKE);
    assert!(in_process.status.success(), "{in_process:?}");
    assert!(!in_process.stdout.is_empty());

    for workers in ["2", "3"] {
        let mut args = SMOKE.to_vec();
        args.extend(["--workers", workers]);
        let subprocess = replend(&args);
        assert!(subprocess.status.success(), "{subprocess:?}");
        assert_eq!(
            String::from_utf8_lossy(&subprocess.stdout),
            String::from_utf8_lossy(&in_process.stdout),
            "--workers {workers} diverged from the in-process run"
        );
        assert_eq!(subprocess.stdout, in_process.stdout, "byte-level diff");
    }
}

#[test]
fn worker_subcommand_with_empty_stdin_is_a_clean_noop() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_replend"))
        .arg("worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn replend worker");
    drop(child.stdin.take()); // immediate EOF: no jobs
    let out = child.wait_with_output().expect("wait for worker");
    assert!(out.status.success(), "{out:?}");
    assert!(out.stdout.is_empty(), "no jobs, no summaries");
}

#[test]
fn worker_subcommand_rejects_garbage_frames() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_replend"))
        .arg("worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn replend worker");
    {
        use std::io::Write as _;
        let mut stdin = child.stdin.take().expect("stdin piped");
        // A framed payload that is not a valid envelope.
        let garbage = [4u8, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef];
        stdin.write_all(&garbage).expect("write garbage");
    }
    let out = child.wait_with_output().expect("wait for worker");
    assert!(!out.status.success(), "garbage must fail the session");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("worker session failed"), "{stderr}");
}

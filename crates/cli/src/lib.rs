//! # replend-cli
//!
//! Command-line front end for the `replend` community simulator:
//!
//! ```text
//! replend run [--ticks N] [--lambda F] [--num-init N] [--f-uncoop F]
//!             [--f-naive F] [--topology random|powerlaw|zipf]
//!             [--policy lending|open|fixed-credit|positive-only|complaints-only]
//!             [--intro-amt F] [--reward F] [--wait N] [--audit-trans N]
//!             [--departure-rate F] [--seed N] [--runs N] [--sample N]
//!             [--histogram N] [--shards N] [--communities K]
//! replend serve [--subjects N] [--rounds N] [--batch N] [--readers N]
//!               [--partitions N] [--num-sm N] [--seed N] [--journal PATH]
//!               [--journal-sync always|batch:N]
//!               [--min-observations N] [--throttle-below F] [--ban-below F]
//! replend calibrate [--budget-ms N] [--subjects N] [--num-sm N] [--seed N]
//!                   [--out PATH]
//! replend table1
//! replend help
//! ```
//!
//! `--shards` partitions the reputation engine's subject store
//! (byte-identical results for any shard count); `--communities`
//! runs K independent communities in parallel as one in-process
//! cluster and prints merged aggregates plus a per-community table.
//!
//! `replend calibrate` measures this host's serial-vs-pool crossover
//! (sweeping batch size × shard count over a seeded synthetic
//! workload) and writes a wire-encoded [`HostProfile`]; `run`,
//! `serve` and `worker` load it via `--profile PATH` to pick their
//! engine defaults. Precedence is **flags > profile > defaults**,
//! and a loaded profile can only change timing, never output (the
//! engine's knob-invariance contract; pinned in tests and CI).
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy
//! has no CLI crate) and fully unit-tested; `main.rs` is a thin shell
//! around [`run_cli`].

use replend_core::community::CommunityBuilder;
use replend_core::serve::{
    run_ingest_workload, ReputationService, ServeConfig, StatusPolicy, SyncPolicy, WorkloadConfig,
};
use replend_core::worker::Worker;
use replend_core::{BootstrapPolicy, CommunityCluster, EngineKind, SubprocessWorker};
use replend_rocq::{ReputationEngine as _, RocqEngine, RocqParams};
use replend_sim::runner::{run_many_parallel, Summary};
use replend_sim::series::average_present;
use replend_types::hash::splitmix64;
use replend_types::{
    Feedback, HostProfile, PeerId, Reputation, ReputationDelta, Table1, TopologyKind,
    HOST_PROFILE_VERSION, POOL_NEVER_WINS,
};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Run a simulation and print the summary (boxed: the full
    /// Table-1 configuration dwarfs the other variants).
    Run(Box<RunArgs>),
    /// Print the Table-1 defaults.
    Table1,
    /// Serve cluster jobs over stdin/stdout (spawned by `run
    /// --workers N`; speaks the `replend-wire` framed protocol). A
    /// host profile, when given, tunes every job's engine knobs
    /// (byte-identical output either way).
    Worker {
        /// Host profile tuning the engine knobs of every job served.
        profile: Option<PathBuf>,
    },
    /// Run the concurrent reputation service under a synthetic ingest
    /// workload (optionally journalled) and print the tier census.
    Serve(ServeArgs),
    /// Open a journalled service, take a durable checkpoint of its
    /// full state, and compact the journal to empty (`replend
    /// compact`). Takes the service-config subset of the serve flags
    /// — the workload flags make no sense here and are rejected.
    Compact(ServeArgs),
    /// Measure this host's serial-vs-pool crossover and write a
    /// wire-encoded [`HostProfile`].
    Calibrate(CalibrateArgs),
    /// Data-driven attack scenarios (`replend scenario …`).
    Scenario(ScenarioCmd),
    /// Print usage.
    Help,
}

/// Subcommands of `replend scenario`.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioCmd {
    /// List the shipped scenarios.
    List,
    /// Run a `.scn` scenario file and write its metrics CSV.
    Run {
        /// The scenario file.
        file: PathBuf,
        /// Engine shard-count override (byte-identical output).
        shards: Option<usize>,
        /// Where to write the metrics CSV (default
        /// `results/scenario_<name>.csv`).
        out: Option<PathBuf>,
    },
    /// Write a builtin scenario's canonical `.scn` bytes.
    Export {
        /// Builtin scenario name.
        name: String,
        /// Where to write it (default `examples/scenarios/<name>.scn`).
        out: Option<PathBuf>,
    },
}

/// Options of `replend calibrate`.
#[derive(Clone, Debug, PartialEq)]
pub struct CalibrateArgs {
    /// Measurement budget per sweep cell (one batch size × shard
    /// count × serial/pool combination), in milliseconds.
    pub budget_ms: u64,
    /// Subjects registered in the synthetic workload.
    pub subjects: u64,
    /// Score managers per subject.
    pub num_sm: usize,
    /// Workload seed (also stamped into the profile envelope).
    pub seed: u64,
    /// Where to write the profile file.
    pub out: PathBuf,
}

impl Default for CalibrateArgs {
    fn default() -> Self {
        CalibrateArgs {
            budget_ms: 80,
            subjects: 20_000,
            num_sm: 6,
            seed: 0,
            out: PathBuf::from("replend-host.profile"),
        }
    }
}

/// Options of `replend serve`.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeArgs {
    /// Subjects registered before ingest starts.
    pub subjects: u64,
    /// Ingest batches applied.
    pub rounds: u64,
    /// Opinions per batch.
    pub batch: usize,
    /// Concurrent reader threads probing the live service.
    pub readers: usize,
    /// Lock partitions of the concurrent engine.
    pub partitions: usize,
    /// Score managers per subject.
    pub num_sm: usize,
    /// Engine + workload seed.
    pub seed: u64,
    /// Write-ahead feedback journal (`None` = in-memory only).
    pub journal: Option<PathBuf>,
    /// Journal flush policy: every record, or group-committed.
    pub journal_sync: SyncPolicy,
    /// Auto-checkpoint (and journal-compaction) cadence in journalled
    /// mutations; `None` = only explicit `replend compact` runs.
    pub checkpoint_every: Option<u64>,
    /// Observations before the status policy trusts a reputation.
    pub min_observations: u64,
    /// Throttle subjects below this reputation.
    pub throttle_below: f64,
    /// Ban subjects below this reputation.
    pub ban_below: f64,
    /// Host profile supplying the default partition count (see
    /// [`CalibrateArgs`]); an explicit `--partitions` wins.
    pub profile: Option<PathBuf>,
    /// True when `--partitions` was given explicitly (profiles must
    /// not override it).
    pub partitions_explicit: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        let workload = WorkloadConfig::default();
        let config = ServeConfig::default();
        ServeArgs {
            subjects: workload.subjects,
            rounds: workload.rounds,
            batch: workload.batch,
            readers: workload.readers,
            partitions: config.partitions,
            num_sm: config.num_sm,
            seed: 0,
            journal: None,
            journal_sync: config.journal_sync,
            checkpoint_every: config.checkpoint_every,
            min_observations: config.policy.min_observations,
            throttle_below: config.policy.throttle_below,
            ban_below: config.policy.ban_below,
            profile: None,
            partitions_explicit: false,
        }
    }
}

impl ServeArgs {
    /// The status-tier policy these arguments describe.
    pub fn policy(&self) -> StatusPolicy {
        StatusPolicy {
            min_observations: self.min_observations,
            throttle_below: self.throttle_below,
            ban_below: self.ban_below,
        }
    }

    /// The service configuration these arguments describe (engine
    /// crash model off: the service is an oracle, not a simulation).
    pub fn service_config(&self) -> ServeConfig {
        ServeConfig {
            num_sm: self.num_sm,
            partitions: self.partitions,
            seed: self.seed,
            policy: self.policy(),
            journal_sync: self.journal_sync,
            checkpoint_every: self.checkpoint_every,
            ..ServeConfig::default()
        }
    }

    /// The synthetic workload these arguments describe.
    pub fn workload(&self) -> WorkloadConfig {
        WorkloadConfig {
            subjects: self.subjects,
            rounds: self.rounds,
            batch: self.batch,
            readers: self.readers,
            seed: self.seed,
        }
    }
}

/// Options of `replend run`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunArgs {
    /// Full simulation configuration.
    pub config: Table1,
    /// Bootstrap policy.
    pub policy: BootstrapPolicy,
    /// RNG seed of the first run.
    pub seed: u64,
    /// Number of averaged runs.
    pub runs: usize,
    /// Sampling interval for the reputation series (0 = no series).
    pub sample: u64,
    /// Print a reputation histogram with this many buckets (0 = off).
    pub histogram: usize,
    /// Departure churn rate (extension; 0 = paper model).
    pub departure_rate: f64,
    /// Independent communities stepped in parallel as one cluster
    /// (1 = the classic single-community run).
    pub communities: usize,
    /// Shared-nothing worker processes executing the cluster
    /// (1 = in-process; N > 1 spawns `replend worker` children;
    /// output is byte-identical either way).
    pub workers: usize,
    /// Host profile supplying default `--shards` / `--batch-min`
    /// values (see [`CalibrateArgs`]); explicit flags win.
    pub profile: Option<PathBuf>,
    /// True when `--shards` was given explicitly.
    pub shards_explicit: bool,
    /// True when `--batch-min` was given explicitly.
    pub batch_min_explicit: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            config: Table1::paper_defaults().with_num_trans(50_000),
            policy: BootstrapPolicy::ReputationLending,
            seed: 0,
            runs: 1,
            sample: 0,
            histogram: 0,
            departure_rate: 0.0,
            communities: 1,
            workers: 1,
            profile: None,
            shards_explicit: false,
            batch_min_explicit: false,
        }
    }
}

/// A parse failure with a user-facing message.
#[derive(Clone, Debug, PartialEq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for UsageError {}

/// Any CLI failure, split so the shell sees the right behaviour:
/// usage problems reprint the usage text, runtime failures (a worker
/// process dying mid-cluster) just report — but **both** must exit
/// non-zero, so neither may travel back through the `Ok` output
/// channel as rendered text.
#[derive(Clone, Debug, PartialEq)]
pub enum CliError {
    /// The command line could not be parsed/validated.
    Usage(UsageError),
    /// A valid command failed while executing.
    Run(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(e) => write!(f, "{e}"),
            CliError::Run(m) => write!(f, "{m}"),
        }
    }
}
impl std::error::Error for CliError {}

impl From<UsageError> for CliError {
    fn from(e: UsageError) -> Self {
        CliError::Usage(e)
    }
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<&str>) -> Result<T, UsageError> {
    let raw = value.ok_or_else(|| UsageError(format!("{flag} requires a value")))?;
    raw.parse()
        .map_err(|_| UsageError(format!("invalid value {raw:?} for {flag}")))
}

/// Parses a count that must be at least 1, with a flag-named message
/// (zero would otherwise travel on to panic deep inside the engine).
fn parse_positive(flag: &str, value: Option<&str>) -> Result<usize, UsageError> {
    let n: usize = parse_value(flag, value)?;
    if n == 0 {
        return Err(UsageError(format!("{flag} must be at least 1")));
    }
    Ok(n)
}

/// Parses `--journal-sync`: `always`, or `batch:N` with `N >= 2`
/// (batch:1 is just `always` — asking for it is a sign of confusion,
/// so it gets the named error too).
fn parse_sync_policy(raw: &str) -> Result<SyncPolicy, UsageError> {
    if raw == "always" {
        return Ok(SyncPolicy::Always);
    }
    if let Some(n) = raw.strip_prefix("batch:") {
        if let Ok(n) = n.parse::<usize>() {
            if n >= 2 {
                return Ok(SyncPolicy::Batch(n));
            }
        }
    }
    Err(UsageError(format!(
        "--journal-sync must be \"always\" or \"batch:N\" with N >= 2, got {raw:?}"
    )))
}

fn parse_policy(raw: &str) -> Result<BootstrapPolicy, UsageError> {
    Ok(match raw {
        "lending" => BootstrapPolicy::ReputationLending,
        "open" => BootstrapPolicy::OpenAdmission { initial: 0.5 },
        "fixed-credit" => BootstrapPolicy::FixedCredit { credit: 0.1 },
        "positive-only" => BootstrapPolicy::PositiveOnly,
        "complaints-only" => BootstrapPolicy::ComplaintsOnly,
        other => return Err(UsageError(format!("unknown policy {other:?}"))),
    })
}

fn parse_topology(raw: &str) -> Result<TopologyKind, UsageError> {
    Ok(match raw {
        "random" => TopologyKind::Random,
        "powerlaw" => TopologyKind::Powerlaw,
        "zipf" => TopologyKind::Zipf,
        other => return Err(UsageError(format!("unknown topology {other:?}"))),
    })
}

/// Parses a full argument list (without the program name).
pub fn parse_args(args: &[&str]) -> Result<Command, UsageError> {
    match args.first().copied() {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("table1") => Ok(Command::Table1),
        Some("worker") => {
            let mut profile = None;
            let mut i = 1;
            while i < args.len() {
                let flag = args[i];
                let value = args.get(i + 1).copied();
                match flag {
                    "--profile" => {
                        let raw: String = parse_value(flag, value)?;
                        profile = Some(PathBuf::from(raw));
                        i += 2;
                    }
                    other => return Err(UsageError(format!("unknown flag {other:?}"))),
                }
            }
            Ok(Command::Worker { profile })
        }
        Some("calibrate") => {
            let mut out = CalibrateArgs::default();
            let mut i = 1;
            while i < args.len() {
                let flag = args[i];
                let value = args.get(i + 1).copied();
                match flag {
                    "--budget-ms" => {
                        out.budget_ms = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--subjects" => {
                        out.subjects = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--num-sm" => {
                        out.num_sm = parse_positive(flag, value)?;
                        i += 2;
                    }
                    "--seed" => {
                        out.seed = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--out" => {
                        let raw: String = parse_value(flag, value)?;
                        out.out = PathBuf::from(raw);
                        i += 2;
                    }
                    other => return Err(UsageError(format!("unknown flag {other:?}"))),
                }
            }
            if out.budget_ms == 0 {
                return Err(UsageError("--budget-ms must be at least 1".into()));
            }
            if out.subjects < 2 {
                return Err(UsageError("--subjects must be at least 2".into()));
            }
            Ok(Command::Calibrate(out))
        }
        Some("serve") => {
            let mut out = ServeArgs::default();
            let mut i = 1;
            while i < args.len() {
                let flag = args[i];
                let value = args.get(i + 1).copied();
                match flag {
                    "--subjects" => {
                        out.subjects = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--rounds" => {
                        out.rounds = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--batch" => {
                        out.batch = parse_positive(flag, value)?;
                        i += 2;
                    }
                    "--readers" => {
                        out.readers = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--partitions" => {
                        // Caught here, not at the engine's assert!.
                        out.partitions = parse_positive(flag, value)?;
                        out.partitions_explicit = true;
                        i += 2;
                    }
                    "--profile" => {
                        let raw: String = parse_value(flag, value)?;
                        out.profile = Some(PathBuf::from(raw));
                        i += 2;
                    }
                    "--num-sm" => {
                        out.num_sm = parse_positive(flag, value)?;
                        i += 2;
                    }
                    "--seed" => {
                        out.seed = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--journal" => {
                        let raw: String = parse_value(flag, value)?;
                        out.journal = Some(PathBuf::from(raw));
                        i += 2;
                    }
                    "--journal-sync" => {
                        let raw: String = parse_value(flag, value)?;
                        out.journal_sync = parse_sync_policy(&raw)?;
                        i += 2;
                    }
                    "--checkpoint-every" => {
                        // Caught here, not as a confusing modulo-zero
                        // later: a cadence of zero makes no sense.
                        out.checkpoint_every = Some(parse_positive(flag, value)? as u64);
                        i += 2;
                    }
                    "--min-observations" => {
                        out.min_observations = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--throttle-below" => {
                        out.throttle_below = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--ban-below" => {
                        out.ban_below = parse_value(flag, value)?;
                        i += 2;
                    }
                    other => return Err(UsageError(format!("unknown flag {other:?}"))),
                }
            }
            if out.subjects == 0 {
                return Err(UsageError("--subjects must be at least 1".into()));
            }
            if out.checkpoint_every.is_some() && out.journal.is_none() {
                return Err(UsageError(
                    "--checkpoint-every needs --journal (an in-memory service has \
                     nothing to checkpoint)"
                        .into(),
                ));
            }
            // Threshold mistakes are caught here, at parse time, with
            // the flag names the user typed — not later from
            // `StatusPolicy::validate` deep in the service.
            if !(0.0..=1.0).contains(&out.throttle_below) {
                return Err(UsageError(format!(
                    "--throttle-below must lie in [0, 1], got {}",
                    out.throttle_below
                )));
            }
            if !(0.0..=1.0).contains(&out.ban_below) {
                return Err(UsageError(format!(
                    "--ban-below must lie in [0, 1], got {}",
                    out.ban_below
                )));
            }
            if out.ban_below >= out.throttle_below {
                return Err(UsageError(format!(
                    "--ban-below ({}) must be strictly below --throttle-below ({})",
                    out.ban_below, out.throttle_below
                )));
            }
            // Backstop: any policy invariant the flag checks above
            // don't cover.
            out.policy()
                .validate()
                .map_err(|e| UsageError(format!("invalid status policy: {e}")))?;
            Ok(Command::Serve(out))
        }
        Some("compact") => {
            let mut out = ServeArgs::default();
            let mut i = 1;
            while i < args.len() {
                let flag = args[i];
                let value = args.get(i + 1).copied();
                match flag {
                    "--journal" => {
                        let raw: String = parse_value(flag, value)?;
                        out.journal = Some(PathBuf::from(raw));
                        i += 2;
                    }
                    "--partitions" => {
                        out.partitions = parse_positive(flag, value)?;
                        out.partitions_explicit = true;
                        i += 2;
                    }
                    "--profile" => {
                        let raw: String = parse_value(flag, value)?;
                        out.profile = Some(PathBuf::from(raw));
                        i += 2;
                    }
                    "--num-sm" => {
                        out.num_sm = parse_positive(flag, value)?;
                        i += 2;
                    }
                    "--seed" => {
                        out.seed = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--journal-sync" => {
                        let raw: String = parse_value(flag, value)?;
                        out.journal_sync = parse_sync_policy(&raw)?;
                        i += 2;
                    }
                    "--min-observations" => {
                        out.min_observations = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--throttle-below" => {
                        out.throttle_below = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--ban-below" => {
                        out.ban_below = parse_value(flag, value)?;
                        i += 2;
                    }
                    other => return Err(UsageError(format!("unknown flag {other:?}"))),
                }
            }
            if out.journal.is_none() {
                return Err(UsageError(
                    "compact needs --journal PATH (the journal to checkpoint and compact)".into(),
                ));
            }
            out.policy()
                .validate()
                .map_err(|e| UsageError(format!("invalid status policy: {e}")))?;
            Ok(Command::Compact(out))
        }
        Some("scenario") => parse_scenario_args(&args[1..]),
        Some("run") => {
            let mut out = RunArgs::default();
            let mut i = 1;
            while i < args.len() {
                let flag = args[i];
                let value = args.get(i + 1).copied();
                match flag {
                    "--ticks" => {
                        out.config.sim.num_trans = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--lambda" => {
                        out.config.sim.arrival_rate = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--num-init" => {
                        out.config.sim.num_init = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--num-sm" => {
                        out.config.sim.num_sm = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--f-uncoop" => {
                        out.config.sim.f_uncoop = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--f-naive" => {
                        out.config.sim.f_naive = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--err-sel" => {
                        out.config.sim.err_sel = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--topology" => {
                        let raw: String = parse_value(flag, value)?;
                        out.config.sim.topology = parse_topology(&raw)?;
                        i += 2;
                    }
                    "--policy" => {
                        let raw: String = parse_value(flag, value)?;
                        out.policy = parse_policy(&raw)?;
                        i += 2;
                    }
                    "--intro-amt" => {
                        out.config.lending.intro_amt = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--reward" => {
                        out.config.lending.reward = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--wait" => {
                        out.config.lending.wait_period = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--audit-trans" => {
                        out.config.lending.audit_trans = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--min-intro" => {
                        out.config.lending.min_intro_override = Some(parse_value(flag, value)?);
                        i += 2;
                    }
                    "--departure-rate" => {
                        out.departure_rate = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--seed" => {
                        out.seed = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--runs" => {
                        out.runs = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--sample" => {
                        out.sample = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--histogram" => {
                        out.histogram = parse_value(flag, value)?;
                        i += 2;
                    }
                    "--shards" => {
                        // Caught here, not at the engine's assert!:
                        // a zero must surface as a friendly usage
                        // error, never a panic.
                        out.config.sim.num_shards = parse_positive(flag, value)?;
                        out.shards_explicit = true;
                        i += 2;
                    }
                    "--batch-min" => {
                        out.config.sim.parallel_batch_min = parse_positive(flag, value)?;
                        out.batch_min_explicit = true;
                        i += 2;
                    }
                    "--profile" => {
                        let raw: String = parse_value(flag, value)?;
                        out.profile = Some(PathBuf::from(raw));
                        i += 2;
                    }
                    "--communities" => {
                        out.communities = parse_positive(flag, value)?;
                        i += 2;
                    }
                    "--workers" => {
                        out.workers = parse_positive(flag, value)?;
                        i += 2;
                    }
                    other => return Err(UsageError(format!("unknown flag {other:?}"))),
                }
            }
            out.config
                .validate()
                .map_err(|e| UsageError(format!("invalid configuration: {e}")))?;
            if out.runs == 0 {
                return Err(UsageError("--runs must be at least 1".into()));
            }
            if out.workers > 1 && out.communities < 2 {
                return Err(UsageError(
                    "--workers N > 1 needs --communities K >= 2 \
                     (workers split the communities of one cluster)"
                        .into(),
                ));
            }
            if out.communities > 1 && out.runs > 1 {
                return Err(UsageError(
                    "--communities and --runs cannot both exceed 1 \
                     (a cluster already averages over its communities)"
                        .into(),
                ));
            }
            Ok(Command::Run(Box::new(out)))
        }
        Some(other) => Err(UsageError(format!(
            "unknown command {other:?}; try `replend help`"
        ))),
    }
}

/// Parses `replend scenario …` (the part after `scenario`).
fn parse_scenario_args(args: &[&str]) -> Result<Command, UsageError> {
    match args.first().copied() {
        Some("list") => match args.get(1) {
            None => Ok(Command::Scenario(ScenarioCmd::List)),
            Some(extra) => Err(UsageError(format!(
                "scenario list takes no arguments, got {extra:?}"
            ))),
        },
        Some("run") => {
            let file = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| UsageError("scenario run needs a .scn file".into()))?;
            let mut shards = None;
            let mut out = None;
            let mut i = 2;
            while i < args.len() {
                let flag = args[i];
                let value = args.get(i + 1).copied();
                match flag {
                    "--shards" => {
                        shards = Some(parse_positive(flag, value)?);
                        i += 2;
                    }
                    "--out" => {
                        let raw: String = parse_value(flag, value)?;
                        out = Some(PathBuf::from(raw));
                        i += 2;
                    }
                    other => return Err(UsageError(format!("unknown flag {other:?}"))),
                }
            }
            Ok(Command::Scenario(ScenarioCmd::Run {
                file: PathBuf::from(file),
                shards,
                out,
            }))
        }
        Some("export") => {
            let name = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| UsageError("scenario export needs a builtin name".into()))?;
            let mut out = None;
            let mut i = 2;
            while i < args.len() {
                let flag = args[i];
                let value = args.get(i + 1).copied();
                match flag {
                    "--out" => {
                        let raw: String = parse_value(flag, value)?;
                        out = Some(PathBuf::from(raw));
                        i += 2;
                    }
                    other => return Err(UsageError(format!("unknown flag {other:?}"))),
                }
            }
            Ok(Command::Scenario(ScenarioCmd::Export {
                name: name.to_string(),
                out,
            }))
        }
        other => Err(UsageError(match other {
            Some(sub) => format!(
                "unknown scenario subcommand {sub:?}; try list, run <file>, or export <name>"
            ),
            None => "scenario needs a subcommand: list, run <file>, or export <name>".into(),
        })),
    }
}

/// Usage text.
pub fn usage() -> String {
    "replend — the reputation-lending community simulator\n\
     \n\
     USAGE:\n\
     \x20 replend run [OPTIONS]   run a simulation and print the summary\n\
     \x20 replend table1          print the paper's Table-1 defaults\n\
     \x20 replend worker [--profile PATH]\n\
     \x20                         serve cluster jobs over stdin/stdout (wire\n\
     \x20                         protocol; spawned by `run --workers N`); a\n\
     \x20                         host profile tunes every job's engine knobs\n\
     \x20 replend serve [OPTIONS] run the concurrent reputation service under a\n\
     \x20                         synthetic ingest workload and print the\n\
     \x20                         operational status-tier census\n\
     \x20 replend compact --journal PATH [OPTIONS]\n\
     \x20                         checkpoint a journalled service's full state\n\
     \x20                         and truncate its journal; the next open\n\
     \x20                         restores the checkpoint and replays only ops\n\
     \x20                         written after it (config flags as for serve)\n\
     \x20 replend calibrate [OPTIONS]\n\
     \x20                         measure this host's serial-vs-pool crossover\n\
     \x20                         and write a host profile for --profile\n\
     \x20 replend scenario list   list the shipped attack scenarios\n\
     \x20 replend scenario run <file> [--shards N] [--out PATH]\n\
     \x20                         run a .scn scenario file deterministically and\n\
     \x20                         write its metrics CSV (default\n\
     \x20                         results/scenario_<name>.csv; honours\n\
     \x20                         $REPLEND_TICKS for reduced-scale smokes;\n\
     \x20                         output is byte-identical for any --shards)\n\
     \x20 replend scenario export <name> [--out PATH]\n\
     \x20                         write a builtin scenario's canonical .scn\n\
     \x20                         bytes (default examples/scenarios/<name>.scn)\n\
     \x20 replend help            this text\n\
     \n\
     RUN OPTIONS (defaults = Table 1, 50 000 ticks):\n\
     \x20 --ticks N           simulation length in transactions\n\
     \x20 --lambda F          Poisson arrival rate per tick\n\
     \x20 --num-init N        founding population\n\
     \x20 --num-sm N          score managers per peer\n\
     \x20 --f-uncoop F        uncooperative share of arrivals\n\
     \x20 --f-naive F         naive share of cooperative peers\n\
     \x20 --err-sel F         selective-introducer error rate\n\
     \x20 --topology T        random | powerlaw | zipf\n\
     \x20 --policy P          lending | open | fixed-credit | positive-only | complaints-only\n\
     \x20 --intro-amt F       reputation staked per introduction\n\
     \x20 --reward F          introducer reward on a passed audit\n\
     \x20 --wait N            introduction waiting period T\n\
     \x20 --audit-trans N     transactions before the newcomer audit\n\
     \x20 --min-intro F       override the minIntro threshold\n\
     \x20 --departure-rate F  member departure rate (extension)\n\
     \x20 --seed N            RNG seed (default 0)\n\
     \x20 --runs N            averaged runs (default 1)\n\
     \x20 --sample N          also print a reputation series every N ticks\n\
     \x20 --histogram N       print an N-bucket member reputation histogram\n\
     \x20 --shards N          reputation-engine shards (default 1; results are\n\
     \x20                     byte-identical for any shard count)\n\
     \x20 --batch-min N       smallest engine report batch fanned out over the\n\
     \x20                     thread pool (default 256; byte-identical results)\n\
     \x20 --communities K     run K independent communities in parallel as one\n\
     \x20                     cluster; prints merged aggregates and a\n\
     \x20                     per-community table (default 1)\n\
     \x20 --workers N         execute the cluster on N shared-nothing worker\n\
     \x20                     processes (`replend worker` children speaking the\n\
     \x20                     wire protocol; default 1 = in-process; output is\n\
     \x20                     byte-identical to the in-process run; needs\n\
     \x20                     --communities >= 2, capped at K)\n\
     \x20 --profile PATH      load a `replend calibrate` host profile to pick\n\
     \x20                     the default --shards / --batch-min (explicit\n\
     \x20                     flags win; results are byte-identical)\n\
     \n\
     SERVE OPTIONS (reads proceed concurrently with ingest; final state\n\
     is deterministic in the seed):\n\
     \x20 --subjects N        subjects registered before ingest (default 10000)\n\
     \x20 --rounds N          ingest batches applied (default 100)\n\
     \x20 --batch N           opinions per batch (default 1000)\n\
     \x20 --readers N         concurrent reader threads (default 2; 0 = ingest only)\n\
     \x20 --partitions N      lock partitions of the concurrent engine (default 8)\n\
     \x20 --num-sm N          score managers per subject (default 6)\n\
     \x20 --seed N            engine + workload seed (default 0)\n\
     \x20 --journal PATH      write-ahead feedback journal; replayed on start,\n\
     \x20                     so a restart lands on byte-identical state\n\
     \x20 --journal-sync M    journal flush policy: \"always\" (flush every\n\
     \x20                     record before applying it; default) or \"batch:N\"\n\
     \x20                     (group commit: flush every N appends; identical\n\
     \x20                     bytes and replay state, up to N-1 applied ops\n\
     \x20                     lost on a crash)\n\
     \x20 --checkpoint-every N  auto-checkpoint (and compact the journal) after\n\
     \x20                     every N journalled ops; needs --journal. Restart\n\
     \x20                     then restores the checkpoint and replays only the\n\
     \x20                     suffix — identical state, bounded restart time\n\
     \x20 --min-observations N  observations before the policy trusts a\n\
     \x20                     reputation (default 10)\n\
     \x20 --throttle-below F  throttle subjects below this reputation (default 0.5)\n\
     \x20 --ban-below F       ban subjects below this reputation (default 0.2)\n\
     \x20 --profile PATH      load a host profile to pick the default\n\
     \x20                     --partitions (an explicit flag wins)\n\
     \n\
     CALIBRATE OPTIONS (writes a versioned, wire-encoded host profile;\n\
     the host tag comes from $REPLEND_HOST, then $HOSTNAME):\n\
     \x20 --budget-ms N       measurement budget per sweep cell (default 80)\n\
     \x20 --subjects N        synthetic-workload subjects (default 20000)\n\
     \x20 --num-sm N          score managers per subject (default 6)\n\
     \x20 --seed N            workload seed, stamped into the profile (default 0)\n\
     \x20 --out PATH          profile file to write (default replend-host.profile)\n"
        .to_string()
}

/// Executes a parsed command, returning the text to print. Fails
/// (with [`CliError::Run`]) only on runtime errors — a worker process
/// dying mid-cluster — so the shell sees a non-zero exit instead of
/// an "error: ..." line on stdout with exit 0.
///
/// `Command::Worker` is intentionally not runnable here — it owns the
/// process's stdin/stdout for the binary wire protocol and is driven
/// by [`run_cli`]; asking for its "output text" yields the usage.
pub fn execute(command: Command) -> Result<String, CliError> {
    match command {
        Command::Help | Command::Worker { .. } => Ok(usage()),
        Command::Calibrate(args) => run_calibrate(&args),
        Command::Table1 => {
            let c = Table1::paper_defaults();
            Ok(format!(
                "Table-1 defaults:\n{}",
                format_args!(
                    "  numInit={} numTrans={} numSM={} lambda={} f_uncoop={} f_naive={} \
                     err_sel={} topology={} T={} auditTrans={} introAmt={} rwd={} minIntro={}\n",
                    c.sim.num_init,
                    c.sim.num_trans,
                    c.sim.num_sm,
                    c.sim.arrival_rate,
                    c.sim.f_uncoop,
                    c.sim.f_naive,
                    c.sim.err_sel,
                    c.sim.topology,
                    c.lending.wait_period,
                    c.lending.audit_trans,
                    c.lending.intro_amt,
                    c.lending.reward,
                    c.lending.min_intro(),
                )
            ))
        }
        Command::Run(args) => run_simulation(&args),
        Command::Serve(args) => run_serve(&args),
        Command::Compact(args) => run_compact(&args),
        Command::Scenario(cmd) => run_scenario(&cmd),
    }
}

/// Executes `replend scenario …`. Malformed scenario files and
/// unknown builtin names are [`CliError::Usage`] (the file is the
/// "argument" here); I/O failures are [`CliError::Run`].
fn run_scenario(cmd: &ScenarioCmd) -> Result<String, CliError> {
    match cmd {
        ScenarioCmd::List => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "shipped scenarios (examples/scenarios/<name>.scn; run with \
                 `replend scenario run <file>`):"
            );
            for scenario in replend_scenario::builtins() {
                let cohorts: Vec<&str> = scenario.cohorts.iter().map(|c| c.class.name()).collect();
                let _ = writeln!(
                    out,
                    "  {:<22} {}\n{:24}seed {}, {} ticks{}",
                    scenario.name,
                    scenario.description,
                    "",
                    scenario.seed,
                    scenario.horizon,
                    if cohorts.is_empty() {
                        String::new()
                    } else {
                        format!(", adversaries: {}", cohorts.join(", "))
                    }
                );
            }
            Ok(out)
        }
        ScenarioCmd::Run { file, shards, out } => {
            let scenario = replend_scenario::load_scenario(file)
                .map_err(CliError::Run)?
                .map_err(|e| UsageError(format!("invalid scenario {}: {e}", file.display())))?;
            let mut options = replend_scenario::capped_options(&scenario);
            options.shards = *shards;
            let runner = replend_scenario::ScenarioRunner::with_options(scenario, options)
                .map_err(|e| UsageError(format!("invalid scenario {}: {e}", file.display())))?;
            let outcome = runner.run_with(options);
            let path = match out {
                Some(path) => {
                    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                        std::fs::create_dir_all(parent).map_err(|e| {
                            CliError::Run(format!("cannot create {}: {e}", parent.display()))
                        })?;
                    }
                    std::fs::write(path, outcome.to_csv()).map_err(|e| {
                        CliError::Run(format!("cannot write {}: {e}", path.display()))
                    })?;
                    path.clone()
                }
                None => replend_scenario::write_metrics_csv(&outcome)
                    .map_err(|e| CliError::Run(format!("cannot write metrics CSV: {e}")))?,
            };
            let mut text = String::new();
            let _ = writeln!(
                text,
                "scenario {}: {} ticks, {} metrics row(s), {} observation(s)",
                outcome.name,
                outcome.ticks_run,
                outcome.rows.len(),
                outcome.observations.len()
            );
            let pop = &outcome.final_population;
            let _ = writeln!(
                text,
                "  final population: {} member(s) ({} cooperative, {} uncooperative)",
                pop.members, pop.cooperative, pop.uncooperative
            );
            if outcome.partition_blocked > 0 {
                let _ = writeln!(
                    text,
                    "  partitions blocked {} transaction(s)",
                    outcome.partition_blocked
                );
            }
            let _ = writeln!(text, "  wrote {}", path.display());
            Ok(text)
        }
        ScenarioCmd::Export { name, out } => {
            let scenario = replend_scenario::builtin(name).ok_or_else(|| {
                UsageError(format!(
                    "unknown builtin scenario {name:?}; shipped scenarios: {}",
                    replend_scenario::BUILTIN_NAMES.join(", ")
                ))
            })?;
            let bytes = replend_scenario::encode_scenario(&scenario)
                .map_err(|e| CliError::Run(format!("cannot encode scenario {name}: {e}")))?;
            let path = out
                .clone()
                .unwrap_or_else(|| replend_scenario::shipped_path(name));
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent).map_err(|e| {
                    CliError::Run(format!("cannot create {}: {e}", parent.display()))
                })?;
            }
            std::fs::write(&path, &bytes)
                .map_err(|e| CliError::Run(format!("cannot write {}: {e}", path.display())))?;
            Ok(format!(
                "wrote {} ({} bytes, seed {})\n",
                path.display(),
                bytes.len(),
                scenario.seed
            ))
        }
    }
}

/// Reads, decodes and validates a `replend calibrate` host profile.
/// Every failure (missing file, bad magic, wrong envelope or payload
/// version, zero fields) surfaces as a friendly [`CliError::Run`]
/// naming the path.
fn load_profile(path: &Path) -> Result<HostProfile, CliError> {
    let bytes = std::fs::read(path)
        .map_err(|e| CliError::Run(format!("cannot read host profile {}: {e}", path.display())))?;
    let (_seed, profile): (u64, HostProfile) = replend_wire::decode_profile(&bytes)
        .map_err(|e| CliError::Run(format!("invalid host profile {}: {e}", path.display())))?;
    profile
        .validate()
        .map_err(|e| CliError::Run(format!("invalid host profile {}: {e}", path.display())))?;
    Ok(profile)
}

/// Applies a `--profile` to run arguments: the profile fills
/// `num_shards` / `parallel_batch_min` **only** where the user did
/// not pass the explicit flag (flags > profile > defaults). The
/// engine guarantees both knobs are byte-identity-safe, so this can
/// change timing but never output.
fn apply_run_profile(args: &mut RunArgs) -> Result<(), CliError> {
    let Some(path) = args.profile.clone() else {
        return Ok(());
    };
    let profile = load_profile(&path)?;
    if !args.shards_explicit {
        args.config.sim.num_shards = profile.num_shards as usize;
    }
    if !args.batch_min_explicit {
        args.config.sim.parallel_batch_min = profile.effective_batch_min();
    }
    Ok(())
}

/// Executes `replend serve`: opens (and replays) the journal when one
/// was requested, runs the synthetic ingest workload with concurrent
/// readers, and prints the operational summary. Everything printed
/// except the read count is deterministic in (seed, workload shape).
fn run_serve(args: &ServeArgs) -> Result<String, CliError> {
    let mut args = args.clone();
    if let Some(path) = args.profile.clone() {
        let profile = load_profile(&path)?;
        if !args.partitions_explicit {
            args.partitions = profile.num_shards as usize;
        }
    }
    let args = &args;
    let config = args.service_config();
    let serve_failed = |e: replend_core::ServeError| CliError::Run(format!("serve failed: {e}"));

    let (service, replayed) = match &args.journal {
        Some(path) => {
            let (service, summary) = ReputationService::open(config, path).map_err(serve_failed)?;
            (service, Some(summary))
        }
        None => (ReputationService::in_memory(config), None),
    };
    let report = run_ingest_workload(&service, args.workload()).map_err(serve_failed)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "replend serve: {} subjects, {} rounds × {} opinions, {} reader thread(s), \
         {} partition(s), seed {}",
        args.subjects, args.rounds, args.batch, args.readers, args.partitions, args.seed
    );
    match (&args.journal, replayed) {
        (Some(path), Some(summary)) => {
            let sync = match args.journal_sync {
                SyncPolicy::Always => "always".to_string(),
                SyncPolicy::Batch(n) => format!("batch:{n}"),
            };
            let _ = writeln!(
                out,
                "  journal: {} (sync {}, replayed {} op(s), {} byte(s){})",
                path.display(),
                sync,
                summary.records,
                summary.bytes,
                if summary.truncated_torn_tail {
                    ", torn tail truncated"
                } else {
                    ""
                }
            );
            if summary.restored_from_checkpoint() {
                let _ = writeln!(
                    out,
                    "  checkpoint: restored generation {} ({} op(s) pre-applied, \
                     {} op(s) replayed from the journal suffix)",
                    summary.checkpoint_generation,
                    summary.replayed_from_checkpoint,
                    summary.replayed_from_journal()
                );
            } else {
                let _ = writeln!(out, "  checkpoint: none (full journal replay)");
            }
            if let Some(every) = args.checkpoint_every {
                let _ = writeln!(out, "  auto-checkpoint: every {every} op(s)");
            }
        }
        _ => {
            let _ = writeln!(out, "  journal: off (in-memory)");
        }
    }
    let _ = writeln!(out, "  registered subjects    {}", report.registered);
    let _ = writeln!(out, "  ingested opinions      {}", report.feedback);
    let _ = writeln!(out, "  reads during ingest    {}", report.reads);
    let _ = writeln!(
        out,
        "  status census (min obs {}, throttle < {}, ban < {}):",
        args.min_observations, args.throttle_below, args.ban_below
    );
    let _ = writeln!(out, "    whitelisted  {}", report.census.whitelisted);
    let _ = writeln!(out, "    throttled    {}", report.census.throttled);
    let _ = writeln!(out, "    banned       {}", report.census.banned);
    Ok(out)
}

/// Executes `replend compact`: opens the journalled service (replaying
/// checkpoint + journal exactly as `serve` would), takes a durable
/// checkpoint, and compacts the journal to empty. The next open
/// restores from the checkpoint and replays nothing.
fn run_compact(args: &ServeArgs) -> Result<String, CliError> {
    let mut args = args.clone();
    if let Some(path) = args.profile.clone() {
        let profile = load_profile(&path)?;
        if !args.partitions_explicit {
            args.partitions = profile.num_shards as usize;
        }
    }
    let path = args.journal.clone().expect("parse requires --journal");
    let serve_failed = |e: replend_core::ServeError| CliError::Run(format!("compact failed: {e}"));
    let (service, summary) =
        ReputationService::open(args.service_config(), &path).map_err(serve_failed)?;
    let report = service.checkpoint().map_err(serve_failed)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "replend compact: {} ({} partition(s), seed {})",
        path.display(),
        args.partitions,
        args.seed
    );
    let _ = writeln!(
        out,
        "  opened: {} op(s) from checkpoint, {} op(s) from journal{}",
        summary.replayed_from_checkpoint,
        summary.replayed_from_journal(),
        if summary.truncated_torn_tail {
            " (torn tail truncated)"
        } else {
            ""
        }
    );
    let _ = writeln!(
        out,
        "  checkpoint: generation {} covering {} op(s), {} byte(s) at {}",
        report.generation,
        report.ops,
        report.bytes,
        replend_core::serve::checkpoint_path(&path).display()
    );
    let _ = writeln!(out, "  journal compacted to 0 byte(s)");
    let _ = writeln!(out, "  subjects               {}", service.subjects());
    let census = service.status_census();
    let _ = writeln!(
        out,
        "  status census (min obs {}, throttle < {}, ban < {}):",
        args.min_observations, args.throttle_below, args.ban_below
    );
    let _ = writeln!(out, "    whitelisted  {}", census.whitelisted);
    let _ = writeln!(out, "    throttled    {}", census.throttled);
    let _ = writeln!(out, "    banned       {}", census.banned);
    Ok(out)
}

/// Shard counts swept by `replend calibrate`.
const CALIBRATE_SHARDS: &[usize] = &[1, 2, 4, 8];
/// Report-batch sizes swept by `replend calibrate`.
const CALIBRATE_BATCHES: &[usize] = &[64, 256, 1024, 4096];

/// The free-form host tag stamped into calibration profiles:
/// `$REPLEND_HOST`, then `$HOSTNAME`, then a fixed fallback. Purely
/// an environment read — this build has no dependency that could ask
/// the OS for a hostname, and an override knob is wanted anyway so CI
/// can pin the tag.
fn host_tag() -> String {
    for var in ["REPLEND_HOST", "HOSTNAME"] {
        if let Ok(v) = std::env::var(var) {
            if !v.is_empty() {
                return v;
            }
        }
    }
    "unknown-host".to_string()
}

/// One deterministic synthetic feedback record (reporter ≠ subject,
/// opinion alternating by hash bit) — the calibration workload.
fn synth_feedback(seed: u64, i: u64, subjects: u64) -> Feedback {
    let h = splitmix64(seed ^ splitmix64(i.wrapping_add(0x9E37_79B9_7F4A_7C15)));
    let reporter = h % subjects;
    let h2 = splitmix64(h);
    let mut subject = h2 % subjects;
    if subject == reporter {
        subject = (subject + 1) % subjects;
    }
    let opinion = if h2 & 1 == 0 { 1.0 } else { 0.0 };
    Feedback::new(PeerId(reporter), PeerId(subject), opinion)
}

/// A fresh calibration engine: `subjects` registered peers, the
/// requested shard count, and the fan-out threshold under test.
fn calibrate_engine(args: &CalibrateArgs, shards: usize, batch_min: usize) -> RocqEngine {
    let mut engine = RocqEngine::sharded(RocqParams::default(), args.num_sm, shards, args.seed)
        .with_parallel_batch_min(batch_min);
    for i in 0..args.subjects {
        engine.register_peer(PeerId(i), Reputation::new(0.5));
    }
    engine
}

/// Times repeated `report_batch` + `drain_deltas` rounds for at least
/// `budget`, returning mean nanoseconds per feedback.
fn measure_ns_per_feedback(engine: &mut RocqEngine, batch: &[Feedback], budget: Duration) -> f64 {
    let mut drained: Vec<ReputationDelta> = Vec::new();
    // One warm-up round pays the lazy costs (scratch growth, page
    // faults) outside the timed window.
    engine.report_batch(batch);
    engine.drain_deltas(&mut drained);
    let start = Instant::now();
    let mut rounds: u64 = 0;
    loop {
        engine.report_batch(batch);
        drained.clear();
        engine.drain_deltas(&mut drained);
        rounds += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / (rounds as f64 * batch.len() as f64)
}

/// Executes `replend calibrate`: sweeps batch size × shard count over
/// a seeded synthetic workload, serial (`batch_min = usize::MAX`)
/// versus pool (`batch_min = 1`), picks the best shard count and the
/// smallest batch size where the pool beat the serial sweep, and
/// writes the wire-encoded [`HostProfile`]. On a host whose pool is
/// bypassed anyway (one thread, per [`pool_threads`]) the pool leg is
/// skipped — it would measure the identical serial path — and the
/// profile records [`POOL_NEVER_WINS`].
fn run_calibrate(args: &CalibrateArgs) -> Result<String, CliError> {
    let threads = replend_rocq::pool_threads();
    let budget = Duration::from_millis(args.budget_ms);
    let max_batch = *CALIBRATE_BATCHES.last().expect("non-empty sweep");
    let feedback: Vec<Feedback> = (0..max_batch as u64)
        .map(|i| synth_feedback(args.seed, i, args.subjects))
        .collect();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "replend calibrate: {} subjects, numSM {}, seed {}, {} pool thread(s), \
         {} ms per cell",
        args.subjects, args.num_sm, args.seed, threads, args.budget_ms
    );
    let _ = writeln!(out, "  ns per feedback (serial / pool):");

    // serial[s][b] = ns/feedback of the serial sweep; pool mirrors it
    // when the pool is reachable (threads > 1, shards > 1).
    let mut serial = vec![vec![0.0f64; CALIBRATE_BATCHES.len()]; CALIBRATE_SHARDS.len()];
    let mut pool = vec![vec![None::<f64>; CALIBRATE_BATCHES.len()]; CALIBRATE_SHARDS.len()];
    for (si, &shards) in CALIBRATE_SHARDS.iter().enumerate() {
        let mut serial_engine = calibrate_engine(args, shards, usize::MAX);
        let mut pool_engine =
            (threads > 1 && shards > 1).then(|| calibrate_engine(args, shards, 1));
        for (bi, &bs) in CALIBRATE_BATCHES.iter().enumerate() {
            serial[si][bi] = measure_ns_per_feedback(&mut serial_engine, &feedback[..bs], budget);
            pool[si][bi] = pool_engine
                .as_mut()
                .map(|e| measure_ns_per_feedback(e, &feedback[..bs], budget));
            let _ = writeln!(
                out,
                "    shards {shards:>2}  batch {bs:>5}  {:>9.1} / {}",
                serial[si][bi],
                pool[si][bi]
                    .map(|ns| format!("{ns:.1}"))
                    .unwrap_or_else(|| "bypassed".into()),
            );
        }
    }

    // Best shard count: fastest sweep at the largest batch (the
    // steady-state shape), taking the better of serial and pool per
    // shard count; ties break toward fewer shards.
    let last = CALIBRATE_BATCHES.len() - 1;
    let cost = |si: usize| serial[si][last].min(pool[si][last].unwrap_or(f64::INFINITY));
    let best_si = (0..CALIBRATE_SHARDS.len())
        .min_by(|&a, &b| cost(a).total_cmp(&cost(b)))
        .expect("non-empty sweep");
    let best_shards = CALIBRATE_SHARDS[best_si];
    // Crossover: smallest swept batch where the pool beat the serial
    // sweep at the chosen shard count.
    let crossover = CALIBRATE_BATCHES
        .iter()
        .enumerate()
        .find(|&(bi, _)| pool[best_si][bi].is_some_and(|p| p < serial[best_si][bi]))
        .map(|(_, &bs)| bs as u64);

    let profile = HostProfile {
        version: HOST_PROFILE_VERSION,
        threads: threads as u32,
        parallel_batch_min: crossover.unwrap_or(POOL_NEVER_WINS),
        num_shards: best_shards as u32,
        host: host_tag(),
    };
    let bytes = replend_wire::encode_profile(args.seed, &profile)
        .map_err(|e| CliError::Run(format!("cannot encode host profile: {e}")))?;
    std::fs::write(&args.out, bytes).map_err(|e| {
        CliError::Run(format!(
            "cannot write host profile {}: {e}",
            args.out.display()
        ))
    })?;

    let _ = writeln!(out, "  chosen: shards {best_shards}");
    match crossover {
        Some(bs) => {
            let _ = writeln!(out, "  chosen: parallel-batch-min {bs} (pool crossover)");
        }
        None => {
            let _ = writeln!(
                out,
                "  chosen: parallel-batch-min never (the pool never won; batches stay serial)"
            );
        }
    }
    let _ = writeln!(
        out,
        "  wrote {} (version {}, host {:?})",
        args.out.display(),
        profile.version,
        profile.host
    );
    Ok(out)
}

/// Per-run scalar outputs gathered for averaging.
#[derive(Clone, Debug)]
struct RunOutput {
    coop: f64,
    uncoop: f64,
    waiting: f64,
    success: f64,
    coop_rep: f64,
    uncoop_rep: f64,
    refused_rep: f64,
    refused_sel: f64,
    series: Vec<Option<f64>>,
    hist: Vec<u64>,
}

/// Renders a member-reputation histogram bucket table (shared by the
/// single-community and cluster output paths).
fn render_histogram(out: &mut String, title: &str, buckets: &[u64]) {
    let n = buckets.len();
    let total: u64 = buckets.iter().sum();
    let _ = writeln!(out, "{title}");
    for (i, &b) in buckets.iter().enumerate() {
        let lo = i as f64 / n as f64;
        let hi = (i + 1) as f64 / n as f64;
        let bar_len = (b * 50).checked_div(total).unwrap_or(0) as usize;
        let _ = writeln!(
            out,
            "    [{lo:.2}, {hi:.2})  {b:>7}  {}",
            "#".repeat(bar_len)
        );
    }
}

/// Renders a fixed-interval reputation series averaged element-wise
/// across sources (runs or communities). Sources with no cooperative
/// members at a sample tick are excluded from that tick's mean; a
/// tick where *every* source was empty prints `n/a` instead of a
/// fabricated 0.0.
fn render_series(out: &mut String, interval: u64, series: &[Vec<Option<f64>>]) {
    let Some(averaged) = average_present(series) else {
        return;
    };
    let _ = writeln!(out, "  reputation series (every {interval} ticks):");
    for (i, mean) in averaged.iter().enumerate() {
        let _ = writeln!(
            out,
            "    t={:>9}  {}",
            (i as u64 + 1) * interval,
            mean.map(|m| format!("{m:.4}"))
                .unwrap_or_else(|| "n/a".into())
        );
    }
}

/// Executes a `--communities K` run: K independent communities run in
/// parallel — in-process, or across `--workers N` subprocess workers —
/// then merged aggregates plus a per-community table. The rendering is
/// transport-blind on purpose: `--workers N` output is byte-identical
/// to the in-process run (pinned by the integration tests and the CI
/// smoke step).
fn run_cluster(args: &RunArgs) -> Result<String, CliError> {
    let builder = CommunityBuilder::new(args.config)
        .policy(args.policy)
        .engine(EngineKind::default())
        .departure_rate(args.departure_rate);
    if args.workers > 1 {
        let program = std::env::current_exe().map_err(|e| {
            CliError::Run(format!(
                "cannot locate the replend binary for --workers: {e}"
            ))
        })?;
        let workers: Vec<SubprocessWorker> = (0..args.workers.min(args.communities))
            .map(|_| SubprocessWorker::new(&program))
            .collect();
        render_cluster(
            args,
            CommunityCluster::with_workers(builder, args.communities, args.seed, workers),
        )
    } else {
        render_cluster(
            args,
            CommunityCluster::build(builder, args.communities, args.seed),
        )
    }
}

/// Runs a configured cluster and renders the merged report — shared
/// verbatim by every transport so the printed bytes cannot depend on
/// how the communities were executed.
fn render_cluster<W: Worker>(
    args: &RunArgs,
    mut cluster: CommunityCluster<W>,
) -> Result<String, CliError> {
    let ticks = args.config.sim.num_trans;
    if args.histogram > 0 {
        cluster.set_histogram_buckets(args.histogram);
    }
    let run_failed = |e: replend_core::WorkerError| CliError::Run(e.to_string());
    let series: Vec<Vec<Option<f64>>> = if args.sample > 0 {
        cluster
            .run_sampled(ticks, args.sample)
            .map_err(run_failed)?
    } else {
        cluster.run(ticks).map_err(run_failed)?;
        Vec::new()
    };

    let pop = cluster.population();
    let stats = cluster.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "replend: {} ticks × {} communities (parallel cluster), policy {}, topology {}, \
         {} engine shard(s), seed {}",
        ticks,
        cluster.len(),
        args.policy.name(),
        args.config.sim.topology,
        args.config.sim.num_shards,
        args.seed
    );
    let _ = writeln!(out, "  merged population:");
    let _ = writeln!(out, "    cooperative members    {}", pop.cooperative);
    let _ = writeln!(out, "    uncooperative members  {}", pop.uncooperative);
    let _ = writeln!(out, "    waiting                {}", pop.waiting);
    let _ = writeln!(out, "    refused                {}", pop.refused);
    let _ = writeln!(
        out,
        "    success rate           {}",
        stats
            .success_rate()
            .map(|r| format!("{r:.4}"))
            .unwrap_or_else(|| "n/a".into())
    );
    let _ = writeln!(
        out,
        "    mean coop reputation   {}",
        cluster
            .mean_cooperative_reputation()
            .map(|r| format!("{r:.4}"))
            .unwrap_or_else(|| "n/a".into())
    );
    let _ = writeln!(
        out,
        "    mean uncoop reputation {}",
        cluster
            .mean_uncooperative_reputation()
            .map(|r| format!("{r:.4}"))
            .unwrap_or_else(|| "n/a".into())
    );
    let _ = writeln!(
        out,
        "  per community (seed schedule order):\n\
         \x20   idx   members  coop  uncoop  waiting  coop rep  success"
    );
    for s in cluster.summaries() {
        let _ = writeln!(
            out,
            "    {:>3}  {:>8}  {:>4}  {:>6}  {:>7}  {:>8}  {:>7}",
            s.index,
            s.population.members,
            s.population.cooperative,
            s.population.uncooperative,
            s.population.waiting,
            s.mean_coop_rep
                .map(|r| format!("{r:.4}"))
                .unwrap_or_else(|| "n/a".into()),
            s.success_rate
                .map(|r| format!("{r:.4}"))
                .unwrap_or_else(|| "n/a".into()),
        );
    }
    if args.histogram > 0 {
        let hist = cluster
            .reputation_histogram()
            .expect("histogram buckets were requested before the run");
        render_histogram(
            &mut out,
            &format!(
                "  merged member reputation histogram ({} buckets):",
                args.histogram
            ),
            hist.buckets(),
        );
    }
    render_series(&mut out, args.sample, &series);
    Ok(out)
}

fn run_simulation(args: &RunArgs) -> Result<String, CliError> {
    let mut args = args.clone();
    apply_run_profile(&mut args)?;
    let args = &args;
    if args.communities > 1 {
        return run_cluster(args);
    }
    let ticks = args.config.sim.num_trans;
    let outputs = run_many_parallel(args.runs, args.seed, |seed| {
        let mut community = CommunityBuilder::new(args.config)
            .policy(args.policy)
            .engine(EngineKind::default())
            .departure_rate(args.departure_rate)
            .seed(seed)
            .build();
        let series = if args.sample > 0 {
            community.run_sampled_with(ticks, args.sample, |c| c.mean_cooperative_reputation())
        } else {
            community.run(ticks);
            Vec::new()
        };
        let hist = if args.histogram > 0 {
            community
                .reputation_histogram(args.histogram)
                .buckets()
                .to_vec()
        } else {
            Vec::new()
        };
        let pop = community.population();
        let stats = community.stats();
        RunOutput {
            coop: pop.cooperative as f64,
            uncoop: pop.uncooperative as f64,
            waiting: pop.waiting as f64,
            success: stats.success_rate().unwrap_or(0.0),
            coop_rep: community.mean_cooperative_reputation().unwrap_or(0.0),
            uncoop_rep: community.mean_uncooperative_reputation().unwrap_or(0.0),
            refused_rep: stats.refused_introducer_reputation as f64,
            refused_sel: stats.refused_selective as f64,
            series,
            hist,
        }
    });

    let col = |f: fn(&RunOutput) -> f64| -> Summary {
        Summary::from_values(&outputs.iter().map(f).collect::<Vec<_>>()).expect("at least one run")
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "replend: {} ticks, policy {}, topology {}, {} run(s), seed {}",
        ticks,
        args.policy.name(),
        args.config.sim.topology,
        args.runs,
        args.seed
    );
    let _ = writeln!(out, "  cooperative members    {}", col(|r| r.coop));
    let _ = writeln!(out, "  uncooperative members  {}", col(|r| r.uncoop));
    let _ = writeln!(out, "  waiting                {}", col(|r| r.waiting));
    let _ = writeln!(out, "  refused (introducer)   {}", col(|r| r.refused_rep));
    let _ = writeln!(out, "  refused (selective)    {}", col(|r| r.refused_sel));
    let _ = writeln!(out, "  success rate           {}", col(|r| r.success));
    let _ = writeln!(out, "  mean coop reputation   {}", col(|r| r.coop_rep));
    let _ = writeln!(out, "  mean uncoop reputation {}", col(|r| r.uncoop_rep));
    if args.histogram > 0 {
        let buckets = args.histogram;
        let mut merged = vec![0u64; buckets];
        for r in &outputs {
            for (i, &b) in r.hist.iter().enumerate() {
                merged[i] += b;
            }
        }
        render_histogram(
            &mut out,
            &format!("  member reputation histogram ({buckets} buckets, all runs):"),
            &merged,
        );
    }
    if args.sample > 0 {
        let series: Vec<Vec<Option<f64>>> = outputs.iter().map(|r| r.series.clone()).collect();
        render_series(&mut out, args.sample, &series);
    }
    Ok(out)
}

/// Parses and executes in one step — the `main` entry point.
///
/// `replend worker` takes over this process's stdin/stdout for the
/// framed wire protocol (jobs in, summaries out) and prints nothing.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    match parse_args(&refs)? {
        Command::Worker { profile } => {
            let profile = match &profile {
                Some(path) => Some(load_profile(path)?),
                None => None,
            };
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            replend_core::worker::serve_tuned(
                &mut stdin.lock(),
                &mut stdout.lock(),
                profile.as_ref(),
            )
            .map_err(|e| CliError::Run(format!("worker session failed: {e}")))?;
            Ok(String::new())
        }
        command => execute(command),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]), Ok(Command::Help));
        assert_eq!(parse_args(&["help"]), Ok(Command::Help));
        assert_eq!(parse_args(&["--help"]), Ok(Command::Help));
    }

    #[test]
    fn table1_command() {
        assert_eq!(parse_args(&["table1"]), Ok(Command::Table1));
        let text = execute(Command::Table1).unwrap();
        assert!(text.contains("introAmt=0.1"));
        assert!(text.contains("numSM=6"));
    }

    #[test]
    fn unknown_command_and_flag() {
        assert!(parse_args(&["frobnicate"]).is_err());
        assert!(parse_args(&["run", "--frobnicate", "1"]).is_err());
    }

    #[test]
    fn run_defaults() {
        let Command::Run(args) = parse_args(&["run"]).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(args.config.sim.num_trans, 50_000);
        assert_eq!(args.policy, BootstrapPolicy::ReputationLending);
        assert_eq!(args.runs, 1);
    }

    #[test]
    fn run_parses_all_flags() {
        let Command::Run(args) = parse_args(&[
            "run",
            "--ticks",
            "1000",
            "--lambda",
            "0.05",
            "--num-init",
            "100",
            "--num-sm",
            "4",
            "--f-uncoop",
            "0.4",
            "--f-naive",
            "0.2",
            "--err-sel",
            "0.05",
            "--topology",
            "zipf",
            "--policy",
            "open",
            "--intro-amt",
            "0.2",
            "--reward",
            "0.04",
            "--wait",
            "500",
            "--audit-trans",
            "10",
            "--min-intro",
            "0.45",
            "--departure-rate",
            "0.001",
            "--seed",
            "9",
            "--runs",
            "3",
            "--sample",
            "250",
            "--shards",
            "4",
        ])
        .unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(args.config.sim.num_trans, 1000);
        assert_eq!(args.config.sim.num_sm, 4);
        assert_eq!(args.config.sim.num_shards, 4);
        assert_eq!(args.config.sim.topology, TopologyKind::Zipf);
        assert_eq!(args.policy, BootstrapPolicy::OpenAdmission { initial: 0.5 });
        assert_eq!(args.config.lending.wait_period, 500);
        assert_eq!(args.config.lending.min_intro_override, Some(0.45));
        assert!((args.departure_rate - 0.001).abs() < 1e-12);
        assert_eq!(args.seed, 9);
        assert_eq!(args.runs, 3);
        assert_eq!(args.sample, 250);
    }

    #[test]
    fn run_rejects_invalid_config() {
        assert!(parse_args(&["run", "--f-uncoop", "2.0"]).is_err());
        assert!(parse_args(&["run", "--runs", "0"]).is_err());
        assert!(parse_args(&["run", "--ticks"]).is_err(), "missing value");
        assert!(parse_args(&["run", "--ticks", "abc"]).is_err());
        assert!(
            parse_args(&["run", "--communities", "2", "--runs", "2"]).is_err(),
            "cluster and multi-run averaging are mutually exclusive"
        );
    }

    #[test]
    fn zero_counts_are_friendly_usage_errors_not_panics() {
        // Each of these would otherwise travel on to an `assert!`
        // deep inside the engine/cluster; they must die at parse time
        // with a message naming the flag.
        for flag in ["--shards", "--communities", "--workers", "--batch-min"] {
            let err = parse_args(&["run", flag, "0"]).unwrap_err();
            assert!(
                err.to_string().contains(flag) && err.to_string().contains("at least 1"),
                "{flag}: {err}"
            );
        }
    }

    #[test]
    fn workers_flag_parses_and_is_validated() {
        let Command::Run(args) =
            parse_args(&["run", "--communities", "3", "--workers", "2"]).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(args.workers, 2);
        assert_eq!(args.communities, 3);
        // Multiple workers need a cluster to split.
        let err = parse_args(&["run", "--workers", "2"]).unwrap_err();
        assert!(err.to_string().contains("--communities"), "{err}");
    }

    #[test]
    fn worker_subcommand_parses() {
        assert_eq!(
            parse_args(&["worker"]),
            Ok(Command::Worker { profile: None })
        );
        let Command::Worker { profile } =
            parse_args(&["worker", "--profile", "/tmp/host.profile"]).unwrap()
        else {
            panic!("expected Worker");
        };
        assert_eq!(profile, Some(PathBuf::from("/tmp/host.profile")));
        assert!(parse_args(&["worker", "--frobnicate"]).is_err());
        // execute() must not hijack stdin; it points at the usage.
        assert!(execute(Command::Worker { profile: None })
            .unwrap()
            .contains("USAGE"));
    }

    #[test]
    fn batch_min_flag_reaches_the_config() {
        let Command::Run(args) = parse_args(&["run", "--batch-min", "64"]).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(args.config.sim.parallel_batch_min, 64);
    }

    #[test]
    fn policies_and_topologies_parse() {
        for (raw, expect) in [
            ("lending", BootstrapPolicy::ReputationLending),
            ("open", BootstrapPolicy::OpenAdmission { initial: 0.5 }),
            ("fixed-credit", BootstrapPolicy::FixedCredit { credit: 0.1 }),
            ("positive-only", BootstrapPolicy::PositiveOnly),
            ("complaints-only", BootstrapPolicy::ComplaintsOnly),
        ] {
            assert_eq!(parse_policy(raw).unwrap(), expect);
        }
        assert!(parse_policy("bogus").is_err());
        assert!(parse_topology("bogus").is_err());
    }

    #[test]
    fn execute_small_run_produces_summary() {
        let cmd = parse_args(&[
            "run",
            "--ticks",
            "2000",
            "--num-init",
            "50",
            "--lambda",
            "0.02",
            "--seed",
            "5",
            "--runs",
            "2",
            "--sample",
            "1000",
            "--histogram",
            "5",
        ])
        .unwrap();
        let text = execute(cmd).unwrap();
        assert!(text.contains("cooperative members"), "{text}");
        assert!(text.contains("reputation series"), "{text}");
        assert!(text.contains("t="), "{text}");
        assert!(text.contains("histogram"), "{text}");
        assert!(text.contains("[0.80, 1.00)"), "{text}");
    }

    #[test]
    fn run_cli_end_to_end() {
        let out = run_cli(&["table1".to_string()]).unwrap();
        assert!(out.contains("Table-1"));
        let err = run_cli(&["nope".to_string()]).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn usage_mentions_every_flag() {
        let u = usage();
        for flag in [
            "--ticks",
            "--lambda",
            "--num-init",
            "--num-sm",
            "--f-uncoop",
            "--f-naive",
            "--err-sel",
            "--topology",
            "--policy",
            "--intro-amt",
            "--reward",
            "--wait",
            "--audit-trans",
            "--min-intro",
            "--departure-rate",
            "--seed",
            "--runs",
            "--sample",
            "--histogram",
            "--shards",
            "--batch-min",
            "--communities",
            "--workers",
            "--subjects",
            "--rounds",
            "--batch ",
            "--readers",
            "--partitions",
            "--journal",
            "--journal-sync",
            "--checkpoint-every",
            "--min-observations",
            "--throttle-below",
            "--ban-below",
            "--profile",
            "--budget-ms",
            "--out",
        ] {
            assert!(u.contains(flag), "usage missing {flag}");
        }
        assert!(
            u.contains("replend worker"),
            "usage missing the worker subcommand"
        );
        assert!(
            u.contains("replend serve"),
            "usage missing the serve subcommand"
        );
        assert!(
            u.contains("replend calibrate"),
            "usage missing the calibrate subcommand"
        );
        assert!(
            u.contains("replend compact"),
            "usage missing the compact subcommand"
        );
    }

    #[test]
    fn serve_parses_all_flags() {
        assert_eq!(
            parse_args(&["serve"]),
            Ok(Command::Serve(ServeArgs::default()))
        );
        let Command::Serve(args) = parse_args(&[
            "serve",
            "--subjects",
            "500",
            "--rounds",
            "20",
            "--batch",
            "100",
            "--readers",
            "0",
            "--partitions",
            "4",
            "--num-sm",
            "3",
            "--seed",
            "7",
            "--journal",
            "/tmp/feedback.wal",
            "--journal-sync",
            "batch:16",
            "--min-observations",
            "5",
            "--throttle-below",
            "0.6",
            "--ban-below",
            "0.3",
        ])
        .unwrap() else {
            panic!("expected Serve");
        };
        assert_eq!(args.subjects, 500);
        assert_eq!(args.rounds, 20);
        assert_eq!(args.batch, 100);
        assert_eq!(args.readers, 0);
        assert_eq!(args.partitions, 4);
        assert_eq!(args.num_sm, 3);
        assert_eq!(args.seed, 7);
        assert_eq!(args.journal, Some(PathBuf::from("/tmp/feedback.wal")));
        assert_eq!(args.journal_sync, SyncPolicy::Batch(16));
        assert_eq!(args.min_observations, 5);
        assert!((args.throttle_below - 0.6).abs() < 1e-12);
        assert!((args.ban_below - 0.3).abs() < 1e-12);
    }

    #[test]
    fn serve_rejects_bad_arguments() {
        assert!(parse_args(&["serve", "--frobnicate", "1"]).is_err());
        assert!(parse_args(&["serve", "--subjects", "0"]).is_err());
        assert!(parse_args(&["serve", "--partitions", "0"]).is_err());
        assert!(parse_args(&["serve", "--batch", "0"]).is_err());
    }

    #[test]
    fn serve_threshold_mistakes_die_at_parse_time_with_flag_names() {
        // Inverted tiers: named after the flags, not the policy field.
        let err =
            parse_args(&["serve", "--throttle-below", "0.1", "--ban-below", "0.4"]).unwrap_err();
        assert!(
            err.to_string()
                .contains("--ban-below (0.4) must be strictly below --throttle-below (0.1)"),
            "{err}"
        );
        // Equal thresholds make the throttle tier empty — also named.
        let err =
            parse_args(&["serve", "--throttle-below", "0.5", "--ban-below", "0.5"]).unwrap_err();
        assert!(err.to_string().contains("strictly below"), "{err}");
        // Out-of-range values name the offending flag.
        let err = parse_args(&["serve", "--throttle-below", "1.5"]).unwrap_err();
        assert!(
            err.to_string()
                .contains("--throttle-below must lie in [0, 1]"),
            "{err}"
        );
        let err = parse_args(&["serve", "--ban-below", "-0.1"]).unwrap_err();
        assert!(
            err.to_string().contains("--ban-below must lie in [0, 1]"),
            "{err}"
        );
        // In-range, correctly ordered values still parse.
        assert!(parse_args(&["serve", "--throttle-below", "0.4", "--ban-below", "0.1"]).is_ok());
    }

    #[test]
    fn serve_parses_journal_sync_policy() {
        let parse = |raw: &str| match parse_args(&["serve", "--journal-sync", raw]) {
            Ok(Command::Serve(args)) => Ok(args.journal_sync),
            Ok(_) => unreachable!(),
            Err(e) => Err(e),
        };
        assert_eq!(parse("always").unwrap(), SyncPolicy::Always);
        assert_eq!(parse("batch:64").unwrap(), SyncPolicy::Batch(64));
        for bad in ["batch:0", "batch:1", "batch:", "batch:x", "sometimes"] {
            let err = parse(bad).unwrap_err();
            assert!(
                err.to_string().contains("--journal-sync must be"),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn serve_execute_prints_census_and_is_seed_deterministic() {
        let small = |seed: &str| {
            execute(
                parse_args(&[
                    "serve",
                    "--subjects",
                    "300",
                    "--rounds",
                    "20",
                    "--batch",
                    "150",
                    "--readers",
                    "0",
                    "--seed",
                    seed,
                ])
                .unwrap(),
            )
            .unwrap()
        };
        let text = small("5");
        assert!(text.contains("replend serve: 300 subjects"), "{text}");
        assert!(text.contains("journal: off (in-memory)"), "{text}");
        assert!(text.contains("ingested opinions      3000"), "{text}");
        assert!(text.contains("status census"), "{text}");
        assert!(text.contains("whitelisted"), "{text}");
        assert!(text.contains("banned"), "{text}");
        // With no reader threads every printed byte is deterministic.
        assert_eq!(text, small("5"));
        assert_ne!(text, small("6"), "different seeds, different census");
    }

    #[test]
    fn serve_execute_journals_and_replays() {
        let path =
            std::env::temp_dir().join(format!("replend-cli-serve-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let journal = path.to_str().unwrap();
        let args = |journal: &str| {
            parse_args(&[
                "serve",
                "--subjects",
                "100",
                "--rounds",
                "5",
                "--batch",
                "50",
                "--readers",
                "0",
                "--journal",
                journal,
            ])
            .unwrap()
        };
        let first = execute(args(journal)).unwrap();
        assert!(first.contains("replayed 0 op(s)"), "{first}");
        assert!(first.contains("checkpoint: none"), "{first}");
        // Second invocation replays the first session's ops: one bulk
        // registration record + 5 batches.
        let second = execute(args(journal)).unwrap();
        assert!(second.contains("replayed 6 op(s)"), "{second}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(replend_core::serve::checkpoint_path(&path));
    }

    #[test]
    fn compact_execute_checkpoints_and_later_serves_restore_from_it() {
        let path =
            std::env::temp_dir().join(format!("replend-cli-compact-{}.wal", std::process::id()));
        let ckpt = replend_core::serve::checkpoint_path(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&ckpt);
        let journal = path.to_str().unwrap().to_string();
        let serve = |journal: &str| {
            parse_args(&[
                "serve",
                "--subjects",
                "100",
                "--rounds",
                "5",
                "--batch",
                "50",
                "--readers",
                "0",
                "--journal",
                journal,
            ])
            .unwrap()
        };
        execute(serve(&journal)).unwrap();

        let text = execute(parse_args(&["compact", "--journal", &journal]).unwrap()).unwrap();
        assert!(text.contains("checkpoint: generation 1"), "{text}");
        assert!(text.contains("journal compacted to 0 byte(s)"), "{text}");
        assert!(text.contains("subjects               100"), "{text}");
        assert!(text.contains("status census"), "{text}");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        assert!(ckpt.exists());

        // The next serve restores from the checkpoint — nothing to
        // replay from the journal.
        let text = execute(serve(&journal)).unwrap();
        assert!(text.contains("replayed 0 op(s)"), "{text}");
        assert!(
            text.contains("checkpoint: restored generation 1 (6 op(s) pre-applied"),
            "{text}"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&ckpt);
    }

    #[test]
    fn compact_parse_is_strict() {
        // --journal is required.
        assert!(matches!(parse_args(&["compact"]), Err(UsageError(_))));
        // Workload flags belong to serve, not compact.
        assert!(matches!(
            parse_args(&["compact", "--journal", "x.wal", "--subjects", "5"]),
            Err(UsageError(_))
        ));
        let Ok(Command::Compact(args)) =
            parse_args(&["compact", "--journal", "x.wal", "--seed", "9"])
        else {
            panic!("compact with a journal parses");
        };
        assert_eq!(args.journal, Some(PathBuf::from("x.wal")));
        assert_eq!(args.seed, 9);
    }

    #[test]
    fn serve_checkpoint_every_parses_and_is_validated() {
        let Ok(Command::Serve(args)) =
            parse_args(&["serve", "--journal", "x.wal", "--checkpoint-every", "500"])
        else {
            panic!("--checkpoint-every with a journal parses");
        };
        assert_eq!(args.checkpoint_every, Some(500));
        // Zero cadence and in-memory checkpointing are caught at
        // parse time with flag-named messages.
        assert!(matches!(
            parse_args(&["serve", "--journal", "x.wal", "--checkpoint-every", "0"]),
            Err(UsageError(_))
        ));
        assert!(matches!(
            parse_args(&["serve", "--checkpoint-every", "10"]),
            Err(UsageError(_))
        ));
    }

    #[test]
    fn cluster_run_prints_merged_and_per_community_output() {
        let cmd = parse_args(&[
            "run",
            "--ticks",
            "1500",
            "--num-init",
            "40",
            "--lambda",
            "0.02",
            "--seed",
            "3",
            "--communities",
            "3",
            "--shards",
            "2",
            "--histogram",
            "4",
            "--sample",
            "500",
        ])
        .unwrap();
        let text = execute(cmd).unwrap();
        assert!(text.contains("3 communities"), "{text}");
        assert!(text.contains("2 engine shard(s)"), "{text}");
        assert!(text.contains("merged population"), "{text}");
        assert!(text.contains("per community"), "{text}");
        assert!(text.contains("histogram"), "{text}");
        // --sample works in cluster mode too: a cross-community
        // averaged series is printed.
        assert!(
            text.contains("reputation series (every 500 ticks)"),
            "{text}"
        );
        assert!(text.contains("t="), "{text}");
        // Three per-community rows, indices 0..=2.
        for idx in ["  0  ", "  1  ", "  2  "] {
            assert!(text.contains(idx), "missing community row {idx}: {text}");
        }
    }

    #[test]
    fn sharded_run_output_matches_unsharded() {
        // The CLI surface of the tentpole guarantee: same seed, same
        // printed bytes, any shard count.
        let run = |shards: &str| {
            execute(
                parse_args(&[
                    "run",
                    "--ticks",
                    "2000",
                    "--num-init",
                    "50",
                    "--lambda",
                    "0.03",
                    "--seed",
                    "11",
                    "--shards",
                    shards,
                    "--histogram",
                    "5",
                ])
                .unwrap(),
            )
        };
        assert_eq!(run("1"), run("4"));
    }

    /// Writes a valid wire-encoded profile to a unique temp path.
    fn write_profile(tag: &str, profile: &HostProfile) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("replend-cli-{tag}-{}.profile", std::process::id()));
        let bytes = replend_wire::encode_profile(0, profile).unwrap();
        std::fs::write(&path, bytes).unwrap();
        path
    }

    fn sample_profile() -> HostProfile {
        HostProfile {
            version: HOST_PROFILE_VERSION,
            threads: 1,
            parallel_batch_min: POOL_NEVER_WINS,
            num_shards: 4,
            host: "test-host".to_string(),
        }
    }

    #[test]
    fn calibrate_parses_all_flags() {
        assert_eq!(
            parse_args(&["calibrate"]),
            Ok(Command::Calibrate(CalibrateArgs::default()))
        );
        let Command::Calibrate(args) = parse_args(&[
            "calibrate",
            "--budget-ms",
            "2",
            "--subjects",
            "300",
            "--num-sm",
            "3",
            "--seed",
            "7",
            "--out",
            "/tmp/p.profile",
        ])
        .unwrap() else {
            panic!("expected Calibrate");
        };
        assert_eq!(args.budget_ms, 2);
        assert_eq!(args.subjects, 300);
        assert_eq!(args.num_sm, 3);
        assert_eq!(args.seed, 7);
        assert_eq!(args.out, PathBuf::from("/tmp/p.profile"));
        assert!(parse_args(&["calibrate", "--budget-ms", "0"]).is_err());
        assert!(parse_args(&["calibrate", "--subjects", "1"]).is_err());
        assert!(parse_args(&["calibrate", "--num-sm", "0"]).is_err());
        assert!(parse_args(&["calibrate", "--frobnicate", "1"]).is_err());
    }

    #[test]
    fn calibrate_writes_a_loadable_profile() {
        let out = std::env::temp_dir().join(format!(
            "replend-cli-calibrate-{}.profile",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&out);
        let cmd = parse_args(&[
            "calibrate",
            "--budget-ms",
            "1",
            "--subjects",
            "200",
            "--num-sm",
            "3",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        let text = execute(cmd).unwrap();
        assert!(text.contains("replend calibrate: 200 subjects"), "{text}");
        assert!(text.contains("chosen: shards"), "{text}");
        assert!(text.contains("wrote "), "{text}");
        let profile = load_profile(&out).unwrap();
        assert_eq!(profile.version, HOST_PROFILE_VERSION);
        assert!(profile.threads >= 1);
        assert!(profile.num_shards >= 1);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn run_with_profile_is_byte_identical_to_profileless() {
        // The CLI face of the knob-invariance contract: a loaded
        // profile (different shard count, pool-never-wins threshold)
        // must not change a single printed byte.
        let path = write_profile("run-identity", &sample_profile());
        let base = [
            "run",
            "--ticks",
            "2000",
            "--num-init",
            "50",
            "--lambda",
            "0.03",
            "--seed",
            "11",
        ];
        let mut profiled: Vec<&str> = base.to_vec();
        let p = path.to_str().unwrap().to_string();
        profiled.extend(["--profile", &p]);
        let plain = execute(parse_args(&base).unwrap()).unwrap();
        let tuned = execute(parse_args(&profiled).unwrap()).unwrap();
        assert_eq!(plain, tuned);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn explicit_flags_beat_the_profile() {
        let path = write_profile("precedence", &sample_profile());
        let p = path.to_str().unwrap().to_string();
        // No explicit flags: the profile fills both knobs.
        let Command::Run(mut args) = parse_args(&["run", "--profile", &p]).unwrap() else {
            panic!("expected Run");
        };
        apply_run_profile(&mut args).unwrap();
        assert_eq!(args.config.sim.num_shards, 4);
        assert_eq!(args.config.sim.parallel_batch_min, usize::MAX);
        // Explicit flags win over the profile.
        let Command::Run(mut args) = parse_args(&[
            "run",
            "--profile",
            &p,
            "--shards",
            "2",
            "--batch-min",
            "128",
        ])
        .unwrap() else {
            panic!("expected Run");
        };
        apply_run_profile(&mut args).unwrap();
        assert_eq!(args.config.sim.num_shards, 2);
        assert_eq!(args.config.sim.parallel_batch_min, 128);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_profile_fills_partitions_unless_explicit() {
        let path = write_profile("serve-partitions", &sample_profile());
        let p = path.to_str().unwrap();
        let small = |extra: &[&str]| {
            let mut argv = vec![
                "serve",
                "--subjects",
                "100",
                "--rounds",
                "5",
                "--batch",
                "50",
                "--readers",
                "0",
                "--profile",
                p,
            ];
            argv.extend_from_slice(extra);
            execute(parse_args(&argv).unwrap()).unwrap()
        };
        // The header echoes the partition count, so it shows whether
        // the profile (4) or the explicit flag (2) won.
        assert!(small(&[]).contains("4 partition(s)"));
        assert!(small(&["--partitions", "2"]).contains("2 partition(s)"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_profile_files_fail_with_friendly_errors() {
        let missing = apply_run_profile(&mut RunArgs {
            profile: Some(PathBuf::from("/nonexistent/host.profile")),
            ..RunArgs::default()
        })
        .unwrap_err();
        assert!(missing.to_string().contains("cannot read"), "{missing}");

        let garbage = std::env::temp_dir().join(format!(
            "replend-cli-garbage-{}.profile",
            std::process::id()
        ));
        std::fs::write(&garbage, b"not a profile").unwrap();
        let err = load_profile(&garbage).unwrap_err();
        assert!(err.to_string().contains("invalid host profile"), "{err}");
        let _ = std::fs::remove_file(&garbage);

        // Structurally valid wire bytes, but a payload the loader
        // must reject (unsupported payload version).
        let stale = write_profile(
            "stale",
            &HostProfile {
                version: HOST_PROFILE_VERSION + 1,
                ..sample_profile()
            },
        );
        let err = load_profile(&stale).unwrap_err();
        assert!(err.to_string().contains("invalid host profile"), "{err}");
        let _ = std::fs::remove_file(&stale);
    }

    // -- replend scenario ---------------------------------------------------

    use replend_scenario::{Scenario, SCENARIO_MAGIC};

    /// `.scn` bytes for an arbitrary payload, bypassing
    /// `encode_scenario`'s validation — how a malformed file reaches
    /// the CLI in the wild.
    fn raw_scn<T: serde::Serialize>(seed: u64, payload: &T) -> Vec<u8> {
        let envelope = replend_wire::SummaryEnvelope::wrap(seed, payload)
            .unwrap()
            .encode()
            .unwrap();
        let mut bytes = SCENARIO_MAGIC.to_vec();
        bytes.extend_from_slice(&envelope);
        bytes
    }

    fn scn_file(tag: &str, bytes: &[u8]) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("replend-cli-{tag}-{}.scn", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    fn tiny_scenario(name: &str) -> Scenario {
        let config = Table1::paper_defaults()
            .with_num_init(40)
            .with_arrival_rate(0.02)
            .with_num_trans(200);
        let mut scenario = Scenario::baseline(name, config, 7, 200);
        scenario.metrics_every = 50;
        scenario
    }

    fn run_scn(path: &Path) -> Result<String, CliError> {
        execute(parse_args(&["scenario", "run", path.to_str().unwrap()]).unwrap())
    }

    #[test]
    fn scenario_subcommands_parse() {
        assert_eq!(
            parse_args(&["scenario", "list"]),
            Ok(Command::Scenario(ScenarioCmd::List))
        );
        assert_eq!(
            parse_args(&["scenario", "run", "a.scn", "--shards", "4", "--out", "m.csv"]),
            Ok(Command::Scenario(ScenarioCmd::Run {
                file: PathBuf::from("a.scn"),
                shards: Some(4),
                out: Some(PathBuf::from("m.csv")),
            }))
        );
        assert_eq!(
            parse_args(&["scenario", "export", "sybil_flood"]),
            Ok(Command::Scenario(ScenarioCmd::Export {
                name: "sybil_flood".to_string(),
                out: None,
            }))
        );
        assert!(parse_args(&["scenario"]).is_err());
        assert!(parse_args(&["scenario", "frobnicate"]).is_err());
        assert!(parse_args(&["scenario", "run"]).is_err(), "missing file");
        assert!(parse_args(&["scenario", "run", "a.scn", "--shards", "0"]).is_err());
        assert!(parse_args(&["scenario", "list", "extra"]).is_err());
    }

    #[test]
    fn scenario_list_names_every_builtin() {
        let text = execute(Command::Scenario(ScenarioCmd::List)).unwrap();
        for name in replend_scenario::BUILTIN_NAMES {
            assert!(text.contains(name), "list is missing {name}:\n{text}");
        }
    }

    #[test]
    fn scenario_run_writes_the_metrics_csv() {
        let scenario = tiny_scenario("cli_tiny");
        let bytes = replend_scenario::encode_scenario(&scenario).unwrap();
        let scn = scn_file("tiny", &bytes);
        let csv = std::env::temp_dir().join(format!("replend-cli-tiny-{}.csv", std::process::id()));
        let text = execute(
            parse_args(&[
                "scenario",
                "run",
                scn.to_str().unwrap(),
                "--out",
                csv.to_str().unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(text.contains("scenario cli_tiny: 200 ticks"), "{text}");
        assert!(text.contains("wrote "), "{text}");
        let written = std::fs::read_to_string(&csv).unwrap();
        assert!(written.starts_with("tick,members,"), "{written}");
        assert_eq!(
            written.lines().count(),
            1 + 1 + 200 / 50,
            "header + t0 + samples"
        );
        let _ = std::fs::remove_file(&scn);
        let _ = std::fs::remove_file(&csv);
    }

    #[test]
    fn scenario_run_missing_file_is_a_runtime_error_not_usage() {
        let err = run_scn(Path::new("/nonexistent/attack.scn")).unwrap_err();
        assert!(matches!(err, CliError::Run(_)), "{err:?}");
        assert!(err.to_string().contains("cannot read scenario"), "{err}");
    }

    #[test]
    fn scenario_run_rejects_an_unknown_adversary_class_by_name() {
        // A file written by a newer replend whose seventh adversary
        // class this build does not know. The mirror payload encodes
        // field-for-field like `Scenario` (the wire format is
        // positional), with the cohort class at variant index 6.
        #[derive(serde::Serialize)]
        enum FutureClass {
            #[allow(dead_code)]
            A,
            #[allow(dead_code)]
            B,
            #[allow(dead_code)]
            C,
            #[allow(dead_code)]
            D,
            #[allow(dead_code)]
            E,
            #[allow(dead_code)]
            F,
            TimeTraveler {
                at_tick: u64,
            },
        }
        let base = tiny_scenario("future");
        // Nested tuples: the wire format writes tuples and structs as
        // prefix-free field concatenations, so this encodes exactly
        // like `Scenario`.
        let payload = (
            (&base.name, &base.description, base.seed, base.horizon),
            (base.metrics_every, &base.config, &base.policy, &base.status),
            (
                base.departure_rate,
                &base.arrival_curve,
                vec![(
                    "cohort0".to_string(),
                    FutureClass::TimeTraveler { at_tick: 0 },
                )],
                &base.faults,
            ),
        );
        let path = scn_file("future-class", &raw_scn(base.seed, &payload));
        let err = run_scn(&path).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        let msg = err.to_string();
        assert!(msg.contains("invalid variant index 6"), "{msg}");
        assert!(
            msg.contains("CollusionRing") && msg.contains("Freeriders"),
            "the error must name the known adversary classes: {msg}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scenario_run_rejects_out_of_range_fractions_by_name() {
        let mut scenario = tiny_scenario("badfrac");
        scenario.faults = vec![replend_scenario::FaultEvent {
            at_tick: 10,
            action: replend_scenario::FaultAction::KillFraction { fraction: 1.5 },
        }];
        let path = scn_file("bad-fraction", &raw_scn(scenario.seed, &scenario));
        let err = run_scn(&path).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        assert!(
            err.to_string()
                .contains("kill-fraction must lie in [0, 1], got 1.5"),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scenario_run_rejects_faults_past_the_horizon_by_name() {
        let mut scenario = tiny_scenario("latefault");
        scenario.faults = vec![replend_scenario::FaultEvent {
            at_tick: 9_999,
            action: replend_scenario::FaultAction::Heal,
        }];
        let path = scn_file("late-fault", &raw_scn(scenario.seed, &scenario));
        let err = run_scn(&path).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        assert!(
            err.to_string()
                .contains("heal scheduled at tick 9999, at or past the horizon 200"),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scenario_export_unknown_name_lists_the_builtins() {
        let err = execute(Command::Scenario(ScenarioCmd::Export {
            name: "frobnicate".to_string(),
            out: None,
        }))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err:?}");
        assert!(err.to_string().contains("churn_storm"), "{err}");
    }

    #[test]
    fn scenario_export_round_trips_through_run() {
        let out =
            std::env::temp_dir().join(format!("replend-cli-export-{}.scn", std::process::id()));
        let text = execute(Command::Scenario(ScenarioCmd::Export {
            name: "sybil_flood".to_string(),
            out: Some(out.clone()),
        }))
        .unwrap();
        assert!(text.contains("wrote "), "{text}");
        let decoded = replend_scenario::decode_scenario(&std::fs::read(&out).unwrap()).unwrap();
        assert_eq!(decoded, replend_scenario::builtin("sybil_flood").unwrap());
        let _ = std::fs::remove_file(&out);
    }
}

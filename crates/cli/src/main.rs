//! `replend` — command-line front end. All logic lives in the library
//! (`replend_cli`) so it can be unit-tested; this shell only handles
//! process arguments and the exit code.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match replend_cli::run_cli(&args) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            // Only usage problems warrant reprinting the usage text;
            // a runtime failure (e.g. a worker process dying) would
            // just bury its message under it.
            if matches!(err, replend_cli::CliError::Usage(_)) {
                eprintln!("{}", replend_cli::usage());
            }
            ExitCode::FAILURE
        }
    }
}

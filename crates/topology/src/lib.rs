//! # replend-topology
//!
//! Interaction topologies for the community simulation.
//!
//! §3 of the paper: *"The requester is chosen at random from the list
//! of peers in the system whereas the respondent is chosen according
//! to the network topology. We model two different topologies: 1)
//! random and 2) scale-free. In the random topology, all nodes are
//! equally likely to be chosen as the potential respondent. In the
//! scale-free topology, the probability of a node being chosen as the
//! potential respondent is distributed according to a power-law."*
//!
//! The same topology also picks the *potential introducer* of a new
//! arrival (§3: "The introducer is also chosen depending on network
//! topology").
//!
//! Two implementations of the [`Topology`] trait:
//!
//! * [`RandomTopology`] — uniform choice, O(1) everything;
//! * [`ScaleFreeTopology`] — a growing Barabási–Albert graph whose
//!   degree-proportional sampling is backed by a [`fenwick::Fenwick`]
//!   tree (O(log n) insert/sample), since the community grows during
//!   a run and the distribution must stay current.
//!
//! The [`alias`] module additionally provides the classic (static)
//! alias method, used by benchmarks for comparison, and [`stats`]
//! provides degree-distribution diagnostics (including a maximum-
//! likelihood power-law exponent) used by the tests to verify the BA
//! graph really is scale-free.

pub mod alias;
pub mod fenwick;
pub mod random;
pub mod scale_free;
pub mod stats;
pub mod zipf;

pub use alias::AliasSampler;
pub use fenwick::Fenwick;
pub use random::RandomTopology;
pub use scale_free::ScaleFreeTopology;
pub use zipf::ZipfTopology;

use rand::RngCore;
use replend_types::{PeerId, TopologyKind};

/// A population whose members can be sampled as transaction
/// respondents / potential introducers.
pub trait Topology {
    /// Adds a peer to the population.
    fn add_peer(&mut self, peer: PeerId, rng: &mut dyn RngCore);

    /// Removes a peer (no-op if absent).
    fn remove_peer(&mut self, peer: PeerId);

    /// Number of peers currently in the population.
    fn len(&self) -> usize;

    /// True when the population is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `peer` is in the population.
    fn contains(&self, peer: PeerId) -> bool;

    /// Samples a peer according to the topology's distribution,
    /// excluding `exclude` (a peer never transacts with itself).
    ///
    /// Returns `None` when no eligible peer exists.
    fn sample(&self, rng: &mut dyn RngCore, exclude: Option<PeerId>) -> Option<PeerId>;

    /// Samples a peer *uniformly* (used for requester choice, which
    /// §3 fixes as uniform for both topologies).
    fn sample_uniform(&self, rng: &mut dyn RngCore, exclude: Option<PeerId>) -> Option<PeerId>;
}

/// Constructs the topology named by a [`TopologyKind`].
///
/// `expected_capacity` is a sizing hint; `m` is the Barabási–Albert
/// attachment count (edges per newcomer), ignored for
/// [`TopologyKind::Random`].
pub fn build_topology(
    kind: TopologyKind,
    expected_capacity: usize,
    m: usize,
) -> Box<dyn Topology + Send> {
    match kind {
        TopologyKind::Random => Box::new(RandomTopology::with_capacity(expected_capacity)),
        TopologyKind::Powerlaw => Box::new(ScaleFreeTopology::with_capacity(expected_capacity, m)),
        TopologyKind::Zipf => Box::new(ZipfTopology::with_capacity(expected_capacity, 1.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn build_topology_dispatches() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [
            TopologyKind::Random,
            TopologyKind::Powerlaw,
            TopologyKind::Zipf,
        ] {
            let mut t = build_topology(kind, 16, 3);
            assert!(t.is_empty());
            for p in 0..10u64 {
                t.add_peer(PeerId(p), &mut rng);
            }
            assert_eq!(t.len(), 10);
            assert!(t.contains(PeerId(3)));
            let s = t.sample(&mut rng, Some(PeerId(0))).unwrap();
            assert_ne!(s, PeerId(0));
            let u = t.sample_uniform(&mut rng, None).unwrap();
            assert!(t.contains(u));
        }
    }
}

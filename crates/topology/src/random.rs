//! The random topology: every peer equally likely to be chosen.
//!
//! §3: *"In the random topology, all nodes are equally likely to be
//! chosen as the potential respondent."* Backed by a dense vector with
//! swap-remove, so every operation is O(1).

use crate::Topology;
use rand::{Rng, RngCore};
use replend_types::PeerId;
use std::collections::HashMap;

/// Uniform-choice population.
#[derive(Clone, Debug, Default)]
pub struct RandomTopology {
    members: Vec<PeerId>,
    /// Position of each member in `members` (for O(1) removal).
    pos: HashMap<PeerId, usize>,
}

impl RandomTopology {
    /// An empty population.
    pub fn new() -> Self {
        RandomTopology::default()
    }

    /// An empty population with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        RandomTopology {
            members: Vec::with_capacity(n),
            pos: HashMap::with_capacity(n),
        }
    }

    fn sample_impl(&self, rng: &mut dyn RngCore, exclude: Option<PeerId>) -> Option<PeerId> {
        match exclude {
            None => {
                if self.members.is_empty() {
                    None
                } else {
                    Some(self.members[rng.gen_range(0..self.members.len())])
                }
            }
            Some(ex) if self.pos.contains_key(&ex) => {
                // Uniform over members minus one: draw an index over
                // len-1 and skip past the excluded slot.
                let n = self.members.len();
                if n < 2 {
                    return None;
                }
                let ex_pos = self.pos[&ex];
                let mut i = rng.gen_range(0..n - 1);
                if i >= ex_pos {
                    i += 1;
                }
                Some(self.members[i])
            }
            Some(_) => {
                // The excluded peer is not a member — plain uniform.
                self.sample_impl(rng, None)
            }
        }
    }
}

impl Topology for RandomTopology {
    fn add_peer(&mut self, peer: PeerId, _rng: &mut dyn RngCore) {
        if self.pos.contains_key(&peer) {
            return;
        }
        self.pos.insert(peer, self.members.len());
        self.members.push(peer);
    }

    fn remove_peer(&mut self, peer: PeerId) {
        let Some(p) = self.pos.remove(&peer) else {
            return;
        };
        let last = self.members.len() - 1;
        self.members.swap(p, last);
        self.members.pop();
        if p <= last && p < self.members.len() {
            self.pos.insert(self.members[p], p);
        }
    }

    fn len(&self) -> usize {
        self.members.len()
    }

    fn contains(&self, peer: PeerId) -> bool {
        self.pos.contains_key(&peer)
    }

    fn sample(&self, rng: &mut dyn RngCore, exclude: Option<PeerId>) -> Option<PeerId> {
        self.sample_impl(rng, exclude)
    }

    fn sample_uniform(&self, rng: &mut dyn RngCore, exclude: Option<PeerId>) -> Option<PeerId> {
        self.sample_impl(rng, exclude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo_of(n: u64) -> (RandomTopology, StdRng) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = RandomTopology::new();
        for p in 0..n {
            t.add_peer(PeerId(p), &mut rng);
        }
        (t, rng)
    }

    #[test]
    fn empty_samples_none() {
        let (t, mut rng) = topo_of(0);
        assert_eq!(t.sample(&mut rng, None), None);
        assert!(t.is_empty());
    }

    #[test]
    fn add_is_idempotent() {
        let (mut t, mut rng) = topo_of(3);
        t.add_peer(PeerId(1), &mut rng);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn singleton_with_exclusion_samples_none() {
        let (t, mut rng) = topo_of(1);
        assert_eq!(t.sample(&mut rng, Some(PeerId(0))), None);
        assert_eq!(t.sample(&mut rng, None), Some(PeerId(0)));
    }

    #[test]
    fn exclusion_is_respected() {
        let (t, mut rng) = topo_of(5);
        for _ in 0..1000 {
            let s = t.sample(&mut rng, Some(PeerId(2))).unwrap();
            assert_ne!(s, PeerId(2));
        }
    }

    #[test]
    fn exclusion_of_non_member_is_uniform() {
        let (t, mut rng) = topo_of(2);
        let s = t.sample(&mut rng, Some(PeerId(99))).unwrap();
        assert!(t.contains(s));
    }

    #[test]
    fn removal_swaps_correctly() {
        let (mut t, mut rng) = topo_of(4);
        t.remove_peer(PeerId(1));
        assert_eq!(t.len(), 3);
        assert!(!t.contains(PeerId(1)));
        for _ in 0..100 {
            assert_ne!(t.sample(&mut rng, None), Some(PeerId(1)));
        }
        // Removing again is a no-op.
        t.remove_peer(PeerId(1));
        assert_eq!(t.len(), 3);
        // Remaining members all reachable.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(t.sample(&mut rng, None).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn remove_last_member() {
        let (mut t, mut rng) = topo_of(1);
        t.remove_peer(PeerId(0));
        assert!(t.is_empty());
        assert_eq!(t.sample(&mut rng, None), None);
    }

    #[test]
    fn sampling_is_uniform() {
        let (t, mut rng) = topo_of(10);
        let trials = 100_000;
        let mut counts = [0usize; 10];
        for _ in 0..trials {
            counts[t.sample(&mut rng, None).unwrap().index()] += 1;
        }
        let expected = trials as f64 / 10.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 5.0 * (expected * 0.9).sqrt(),
                "peer {i}: {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn sampling_with_exclusion_is_uniform_over_rest() {
        let (t, mut rng) = topo_of(5);
        let trials = 100_000;
        let mut counts = [0usize; 5];
        for _ in 0..trials {
            counts[t.sample(&mut rng, Some(PeerId(0))).unwrap().index()] += 1;
        }
        assert_eq!(counts[0], 0);
        let expected = trials as f64 / 4.0;
        for (i, &c) in counts.iter().enumerate().skip(1) {
            assert!(
                (c as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "peer {i}: {c} vs expected {expected}"
            );
        }
    }
}

//! Degree-distribution diagnostics.
//!
//! Used by tests (and the `fig1` experiment's topology sanity check)
//! to verify that the Barabási–Albert generator really produces the
//! power-law interaction distribution the paper's scale-free setting
//! requires.

/// Histogram of degrees: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(degrees: &[u32]) -> Vec<usize> {
    if degrees.is_empty() {
        return Vec::new();
    }
    let max = degrees.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0usize; max + 1];
    for &d in degrees {
        hist[d as usize] += 1;
    }
    hist
}

/// Mean degree; `None` for an empty input.
pub fn mean_degree(degrees: &[u32]) -> Option<f64> {
    if degrees.is_empty() {
        return None;
    }
    Some(degrees.iter().map(|&d| d as f64).sum::<f64>() / degrees.len() as f64)
}

/// Complementary CDF `P(D >= d)` evaluated at each degree value
/// `0..=max`. Useful for plotting/straight-line checks on log-log
/// axes.
pub fn degree_ccdf(degrees: &[u32]) -> Vec<f64> {
    let hist = degree_histogram(degrees);
    let n = degrees.len();
    if n == 0 {
        return Vec::new();
    }
    let mut ccdf = vec![0.0; hist.len()];
    let mut tail = 0usize;
    for d in (0..hist.len()).rev() {
        tail += hist[d];
        ccdf[d] = tail as f64 / n as f64;
    }
    ccdf
}

/// Maximum-likelihood estimate of the power-law exponent `α` for the
/// discrete tail `d >= d_min`, per Clauset, Shalizi & Newman (2009):
///
/// `α ≈ 1 + n_tail / Σ ln(d_i / (d_min − 1/2))`
///
/// Returns `None` when fewer than 10 observations lie in the tail
/// (too little data for a meaningful fit).
pub fn power_law_alpha_mle(degrees: &[u32], d_min: u32) -> Option<f64> {
    let d_min = d_min.max(1);
    let tail: Vec<f64> = degrees
        .iter()
        .copied()
        .filter(|&d| d >= d_min)
        .map(|d| d as f64)
        .collect();
    if tail.len() < 10 {
        return None;
    }
    let denom: f64 = tail.iter().map(|&d| (d / (d_min as f64 - 0.5)).ln()).sum();
    if denom <= 0.0 {
        return None;
    }
    Some(1.0 + tail.len() as f64 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn histogram_counts() {
        let h = degree_histogram(&[0, 1, 1, 3]);
        assert_eq!(h, vec![1, 2, 0, 1]);
        assert_eq!(degree_histogram(&[]), Vec::<usize>::new());
    }

    #[test]
    fn mean_degree_basic() {
        assert_eq!(mean_degree(&[]), None);
        assert_eq!(mean_degree(&[2, 4]), Some(3.0));
    }

    #[test]
    fn ccdf_is_monotone_and_starts_at_one() {
        let ccdf = degree_ccdf(&[1, 2, 2, 5]);
        assert!((ccdf[0] - 1.0).abs() < 1e-12);
        for w in ccdf.windows(2) {
            assert!(w[0] >= w[1], "CCDF must be non-increasing");
        }
        assert!((ccdf[5] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mle_rejects_tiny_tails() {
        assert_eq!(power_law_alpha_mle(&[5; 5], 3), None);
        assert_eq!(power_law_alpha_mle(&[], 3), None);
    }

    #[test]
    fn mle_recovers_known_exponent() {
        // Sample a discrete power law with α = 2.5 via inverse
        // transform on the continuous approximation, then check the
        // MLE lands near 2.5.
        let alpha = 2.5f64;
        let d_min = 3u32;
        let mut rng = StdRng::seed_from_u64(1234);
        let degrees: Vec<u32> = (0..20_000)
            .map(|_| {
                let u: f64 = rng.gen::<f64>();
                let x = (d_min as f64 - 0.5) * (1.0 - u).powf(-1.0 / (alpha - 1.0));
                x.round().min(1e7) as u32
            })
            .collect();
        let est = power_law_alpha_mle(&degrees, d_min).unwrap();
        assert!(
            (est - alpha).abs() < 0.15,
            "MLE {est} too far from true α = {alpha}"
        );
    }

    #[test]
    fn mle_on_constant_degrees_is_none_or_large() {
        // All mass at d_min ⇒ ln-ratio sum is 0-ish ⇒ None (or huge α).
        let res = power_law_alpha_mle(&[3; 100], 3);
        match res {
            None => {}
            Some(a) => assert!(a > 5.0, "uniform degrees should not look scale-free"),
        }
    }
}

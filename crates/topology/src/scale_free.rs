//! The scale-free topology: Barabási–Albert growth with
//! degree-proportional sampling.
//!
//! §3: *"In the scale-free topology, the probability of a node being
//! chosen as the potential respondent is distributed according to a
//! power-law."* The canonical generator of power-law interaction
//! graphs is Barabási–Albert preferential attachment, which also
//! matches the paper's setting exactly: the community *grows* by
//! arrivals, and each arrival attaches preferentially to
//! well-connected members.
//!
//! Implementation notes:
//!
//! * Each newcomer draws `m` distinct attachment targets with
//!   probability proportional to `degree + 1` (attachment with unit
//!   initial attractiveness, so isolated seed nodes remain
//!   reachable); the resulting degree distribution is power-law with
//!   exponent `γ ≈ 3 + 1/m` (verified by a statistical test against
//!   the Clauset–Shalizi–Newman MLE in [`stats`](crate::stats)).
//! * Degree weights live in a [`Fenwick`](crate::fenwick::Fenwick)
//!   tree: O(log n) per attachment and per sample, so the topology
//!   stays exact while the population grows tick by tick.
//! * Slots are never reused (removal tombstones the index); the
//!   simulated community only grows, but removal is supported for
//!   generality and tested.

use crate::fenwick::Fenwick;
use crate::Topology;
use rand::{Rng, RngCore};
use replend_types::PeerId;
use std::collections::HashMap;

/// Barabási–Albert scale-free population.
#[derive(Clone, Debug)]
pub struct ScaleFreeTopology {
    /// Attachment edges per newcomer.
    m: usize,
    /// Slot -> peer (never reused; dead slots keep their id).
    slot_peer: Vec<PeerId>,
    /// Peer -> slot.
    slots: HashMap<PeerId, usize>,
    /// Adjacency lists over slots.
    adj: Vec<Vec<u32>>,
    /// Degree of each slot (0 for dead slots).
    degree: Vec<u32>,
    /// Liveness flag per slot.
    alive: Vec<bool>,
    /// Sampling weights: `degree + 1` for live slots, 0 for dead.
    weights: Fenwick,
    /// Dense list of live slots for O(1) uniform sampling.
    live: Vec<u32>,
    /// Position of each live slot in `live`.
    live_pos: HashMap<u32, usize>,
}

impl ScaleFreeTopology {
    /// A new topology with `m` attachment edges per arrival.
    ///
    /// `m` is clamped to at least 1.
    pub fn new(m: usize) -> Self {
        Self::with_capacity(0, m)
    }

    /// A new topology with pre-allocated capacity.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        ScaleFreeTopology {
            m: m.max(1),
            slot_peer: Vec::with_capacity(n),
            slots: HashMap::with_capacity(n),
            adj: Vec::with_capacity(n),
            degree: Vec::with_capacity(n),
            alive: Vec::with_capacity(n),
            weights: Fenwick::new(),
            live: Vec::with_capacity(n),
            live_pos: HashMap::with_capacity(n),
        }
    }

    /// The configured attachment parameter `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Current degree of `peer` (0 if absent).
    pub fn degree_of(&self, peer: PeerId) -> u32 {
        self.slots.get(&peer).map(|&s| self.degree[s]).unwrap_or(0)
    }

    /// Degrees of all live peers — input for the power-law
    /// diagnostics in [`stats`](crate::stats).
    pub fn live_degrees(&self) -> Vec<u32> {
        self.live.iter().map(|&s| self.degree[s as usize]).collect()
    }

    /// Draws one live slot with probability ∝ `degree + 1`,
    /// excluding `exclude_slot` by bounded rejection with a uniform
    /// fallback.
    fn sample_slot(&self, rng: &mut dyn RngCore, exclude_slot: Option<usize>) -> Option<usize> {
        let total = self.weights.total();
        if total == 0 {
            return None;
        }
        if self.live.len() < 2 && exclude_slot.is_some() {
            let only = *self.live.first()? as usize;
            return if Some(only) == exclude_slot {
                None
            } else {
                Some(only)
            };
        }
        // Rejection loop: the excluded slot's weight share is < 1 in
        // any ring with ≥ 2 live slots, but a hub can make the share
        // large, so bound the retries and fall back to uniform.
        for _ in 0..64 {
            let u = rng.gen_range(0..total);
            let s = self.weights.sample_index(u)?;
            if Some(s) != exclude_slot {
                debug_assert!(self.alive[s]);
                return Some(s);
            }
        }
        // Fallback: uniform over live slots minus the exclusion.
        let n = self.live.len();
        for _ in 0..64 {
            let s = self.live[rng.gen_range(0..n)] as usize;
            if Some(s) != exclude_slot {
                return Some(s);
            }
        }
        None
    }

    fn add_edge(&mut self, a: usize, b: usize) {
        self.adj[a].push(b as u32);
        self.adj[b].push(a as u32);
        self.degree[a] += 1;
        self.degree[b] += 1;
        self.weights.add(a, 1);
        self.weights.add(b, 1);
    }
}

impl Topology for ScaleFreeTopology {
    fn add_peer(&mut self, peer: PeerId, rng: &mut dyn RngCore) {
        if self.slots.contains_key(&peer) {
            return;
        }
        let slot = self.slot_peer.len();
        self.slot_peer.push(peer);
        self.slots.insert(peer, slot);
        self.adj.push(Vec::with_capacity(self.m));
        self.degree.push(0);
        self.alive.push(true);
        // Weight = degree + 1 (unit attractiveness).
        let pushed = self.weights.push(1);
        debug_assert_eq!(pushed, slot);
        self.live_pos.insert(slot as u32, self.live.len());
        self.live.push(slot as u32);

        // Preferential attachment: up to m distinct targets among the
        // pre-existing live peers.
        let candidates = self.live.len() - 1;
        if candidates == 0 {
            return;
        }
        let want = self.m.min(candidates);
        let mut targets: Vec<usize> = Vec::with_capacity(want);
        // Bounded attempts to find distinct targets; duplicates are
        // re-drawn (standard BA simple-graph variant).
        let mut attempts = 0;
        while targets.len() < want && attempts < 64 * want {
            attempts += 1;
            if let Some(t) = self.sample_slot(rng, Some(slot)) {
                if !targets.contains(&t) {
                    targets.push(t);
                }
            } else {
                break;
            }
        }
        for t in targets {
            self.add_edge(slot, t);
        }
    }

    fn remove_peer(&mut self, peer: PeerId) {
        let Some(slot) = self.slots.remove(&peer) else {
            return;
        };
        // Detach from neighbours.
        let neighbours = std::mem::take(&mut self.adj[slot]);
        for nb in neighbours {
            let nb = nb as usize;
            if !self.alive[nb] {
                continue;
            }
            if let Some(p) = self.adj[nb].iter().position(|&x| x as usize == slot) {
                self.adj[nb].swap_remove(p);
                self.degree[nb] -= 1;
                self.weights.add(nb, -1);
            }
        }
        // Tombstone: zero the weight (degree + 1 units), mark dead.
        self.weights.add(slot, -((self.degree[slot] + 1) as i64));
        self.degree[slot] = 0;
        self.alive[slot] = false;
        // Remove from the dense live list.
        let pos = self
            .live_pos
            .remove(&(slot as u32))
            .expect("live slot tracked");
        let last = self.live.len() - 1;
        self.live.swap(pos, last);
        self.live.pop();
        if pos < self.live.len() {
            self.live_pos.insert(self.live[pos], pos);
        }
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn contains(&self, peer: PeerId) -> bool {
        self.slots.contains_key(&peer)
    }

    fn sample(&self, rng: &mut dyn RngCore, exclude: Option<PeerId>) -> Option<PeerId> {
        let ex_slot = exclude.and_then(|p| self.slots.get(&p).copied());
        let s = self.sample_slot(rng, ex_slot)?;
        Some(self.slot_peer[s])
    }

    fn sample_uniform(&self, rng: &mut dyn RngCore, exclude: Option<PeerId>) -> Option<PeerId> {
        let ex_slot = exclude.and_then(|p| self.slots.get(&p).copied());
        let n = self.live.len();
        if n == 0 {
            return None;
        }
        if n == 1 {
            let only = self.live[0] as usize;
            return if Some(only) == ex_slot {
                None
            } else {
                Some(self.slot_peer[only])
            };
        }
        match ex_slot.and_then(|s| self.live_pos.get(&(s as u32)).copied()) {
            None => {
                let s = self.live[rng.gen_range(0..n)] as usize;
                Some(self.slot_peer[s])
            }
            Some(ex_pos) => {
                let mut i = rng.gen_range(0..n - 1);
                if i >= ex_pos {
                    i += 1;
                }
                Some(self.slot_peer[self.live[i] as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grown(n: u64, m: usize, seed: u64) -> (ScaleFreeTopology, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = ScaleFreeTopology::new(m);
        for p in 0..n {
            t.add_peer(PeerId(p), &mut rng);
        }
        (t, rng)
    }

    #[test]
    fn empty_and_singleton() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut t = ScaleFreeTopology::new(3);
        assert!(t.is_empty());
        assert_eq!(t.sample(&mut rng, None), None);
        t.add_peer(PeerId(0), &mut rng);
        assert_eq!(t.len(), 1);
        assert_eq!(t.sample(&mut rng, None), Some(PeerId(0)));
        assert_eq!(t.sample(&mut rng, Some(PeerId(0))), None);
        assert_eq!(t.sample_uniform(&mut rng, Some(PeerId(0))), None);
    }

    #[test]
    fn m_is_clamped_to_one() {
        assert_eq!(ScaleFreeTopology::new(0).m(), 1);
    }

    #[test]
    fn duplicate_add_is_noop() {
        let (mut t, mut rng) = grown(5, 2, 1);
        t.add_peer(PeerId(2), &mut rng);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn newcomers_attach_m_edges() {
        let (t, _) = grown(50, 3, 2);
        // Each arrival past the 4th adds exactly 3 edges, so total
        // degree = 2 * edges; check newcomer 49 has degree >= 3 is not
        // guaranteed (it has exactly m unless it arrived early).
        let total_degree: u64 = t.live_degrees().iter().map(|&d| d as u64).sum();
        // Edges: arrivals 1..50 each add min(m, existing) edges:
        // 1 + 2 + 3*47 = 144 edges.
        assert_eq!(total_degree, 2 * 144);
    }

    #[test]
    fn degrees_sum_even() {
        let (t, _) = grown(200, 2, 3);
        let total: u64 = t.live_degrees().iter().map(|&d| d as u64).sum();
        assert_eq!(total % 2, 0, "handshake lemma");
    }

    #[test]
    fn exclusion_respected() {
        let (t, mut rng) = grown(20, 2, 4);
        for p in 0..20u64 {
            for _ in 0..50 {
                assert_ne!(t.sample(&mut rng, Some(PeerId(p))), Some(PeerId(p)));
            }
        }
    }

    #[test]
    fn sampling_prefers_hubs() {
        let (t, mut rng) = grown(300, 2, 5);
        // Find the max-degree hub and a min-degree leaf.
        let degs = t.live_degrees();
        let hub = (0..300u64).max_by_key(|&p| t.degree_of(PeerId(p))).unwrap();
        let leaf = (0..300u64).min_by_key(|&p| t.degree_of(PeerId(p))).unwrap();
        assert!(t.degree_of(PeerId(hub)) > t.degree_of(PeerId(leaf)));
        let trials = 100_000;
        let (mut hub_hits, mut leaf_hits) = (0u32, 0u32);
        for _ in 0..trials {
            let s = t.sample(&mut rng, None).unwrap();
            if s == PeerId(hub) {
                hub_hits += 1;
            } else if s == PeerId(leaf) {
                leaf_hits += 1;
            }
        }
        assert!(
            hub_hits > leaf_hits * 2,
            "hub (deg {}) hit {hub_hits}, leaf (deg {}) hit {leaf_hits}",
            degs.iter().max().unwrap(),
            degs.iter().min().unwrap()
        );
    }

    #[test]
    fn degree_distribution_is_power_law() {
        let (t, _) = grown(3000, 3, 6);
        let degrees = t.live_degrees();
        let alpha = stats::power_law_alpha_mle(&degrees, 3).expect("enough tail data");
        // BA with unit attractiveness: γ ≈ 3 + 1/m ≈ 3.33; the MLE on
        // a finite graph lands roughly in [2.3, 4.2].
        assert!(
            (2.0..=4.8).contains(&alpha),
            "power-law exponent {alpha} outside scale-free range"
        );
    }

    #[test]
    fn random_graph_is_not_power_law_shaped() {
        // Sanity check of the diagnostic itself: degrees of a uniform
        // random selection don't produce the heavy tail.
        let (t, _) = grown(3000, 3, 7);
        let degrees = t.live_degrees();
        let max = *degrees.iter().max().unwrap();
        let mean = degrees.iter().map(|&d| d as f64).sum::<f64>() / degrees.len() as f64;
        // Scale-free: max degree is a large multiple of the mean.
        assert!(
            (max as f64) > 6.0 * mean,
            "max degree {max} vs mean {mean} — tail not heavy"
        );
    }

    #[test]
    fn removal_updates_neighbours_and_sampling() {
        let (mut t, mut rng) = grown(30, 2, 8);
        let victim = PeerId(7);
        let before_total: u64 = t.live_degrees().iter().map(|&d| d as u64).sum();
        let victim_deg = t.degree_of(victim) as u64;
        t.remove_peer(victim);
        assert!(!t.contains(victim));
        assert_eq!(t.len(), 29);
        let after_total: u64 = t.live_degrees().iter().map(|&d| d as u64).sum();
        assert_eq!(after_total, before_total - 2 * victim_deg);
        for _ in 0..2000 {
            assert_ne!(t.sample(&mut rng, None), Some(victim));
            assert_ne!(t.sample_uniform(&mut rng, None), Some(victim));
        }
        // Idempotent.
        t.remove_peer(victim);
        assert_eq!(t.len(), 29);
    }

    #[test]
    fn growth_after_removal_still_works() {
        let (mut t, mut rng) = grown(10, 2, 9);
        for p in 0..5u64 {
            t.remove_peer(PeerId(p));
        }
        for p in 100..120u64 {
            t.add_peer(PeerId(p), &mut rng);
        }
        assert_eq!(t.len(), 25);
        let s = t.sample(&mut rng, None).unwrap();
        assert!(t.contains(s));
    }

    #[test]
    fn uniform_sampling_ignores_degree() {
        let (t, mut rng) = grown(100, 3, 10);
        let hub = (0..100u64).max_by_key(|&p| t.degree_of(PeerId(p))).unwrap();
        let trials = 200_000;
        let mut hub_hits = 0u32;
        for _ in 0..trials {
            if t.sample_uniform(&mut rng, None) == Some(PeerId(hub)) {
                hub_hits += 1;
            }
        }
        let expected = trials as f64 / 100.0;
        assert!(
            (hub_hits as f64 - expected).abs() < 6.0 * expected.sqrt(),
            "hub drawn {hub_hits} times under uniform, expected {expected}"
        );
    }
}

//! Walker's alias method: O(1) sampling from a *fixed* discrete
//! distribution after O(n) setup.
//!
//! The simulator itself uses the dynamic [`Fenwick`] sampler (the
//! population grows), but the alias method is the right tool for
//! static distributions — the `weighted_sampling` bench compares the
//! two, quantifying the price paid for dynamism.
//!
//! [`Fenwick`]: crate::fenwick::Fenwick

use rand::Rng;

/// Precomputed alias tables for a discrete distribution.
#[derive(Clone, Debug)]
pub struct AliasSampler {
    /// Acceptance probability of each slot's own index.
    prob: Vec<f64>,
    /// Fallback index taken when the acceptance test fails.
    alias: Vec<usize>,
}

impl AliasSampler {
    /// Builds tables from non-negative weights.
    ///
    /// Returns `None` when `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<AliasSampler> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        // Scale weights to mean 1.
        let scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        let mut work = scaled;
        for (i, &w) in work.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = large.pop().expect("checked non-empty");
            prob[s] = work[s];
            alias[s] = l;
            work[l] = (work[l] + work[s]) - 1.0;
            if work[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: all remaining slots accept themselves.
        for i in large.into_iter().chain(small) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Some(AliasSampler { prob, alias })
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the sampler has no slots (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index with probability proportional to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(AliasSampler::new(&[]).is_none());
        assert!(AliasSampler::new(&[0.0, 0.0]).is_none());
        assert!(AliasSampler::new(&[1.0, -1.0]).is_none());
        assert!(AliasSampler::new(&[f64::NAN]).is_none());
        assert!(AliasSampler::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn single_slot_always_sampled() {
        let s = AliasSampler::new(&[3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_slot_never_sampled() {
        let s = AliasSampler::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert_ne!(s.sample(&mut rng), 1);
        }
    }

    #[test]
    fn distribution_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let s = AliasSampler::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 400_000;
        let mut counts = [0usize; 4];
        for _ in 0..trials {
            counts[s.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = trials as f64 * w / total;
            let got = counts[i] as f64;
            // 5-sigma binomial tolerance.
            let sigma = (trials as f64 * (w / total) * (1.0 - w / total)).sqrt();
            assert!(
                (got - expected).abs() < 5.0 * sigma,
                "slot {i}: got {got}, expected {expected} ± {sigma}"
            );
        }
    }

    proptest! {
        /// Every sampled index is valid and has nonzero weight.
        #[test]
        fn samples_are_valid_and_supported(
            weights in proptest::collection::vec(0.0f64..10.0, 1..32),
            seed in proptest::num::u64::ANY,
        ) {
            prop_assume!(weights.iter().sum::<f64>() > 0.0);
            let s = AliasSampler::new(&weights).unwrap();
            prop_assert_eq!(s.len(), weights.len());
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..64 {
                let i = s.sample(&mut rng);
                prop_assert!(i < weights.len());
                // Slots with exactly zero weight must never be drawn.
                prop_assert!(weights[i] > 0.0, "drew zero-weight slot {}", i);
            }
        }
    }
}

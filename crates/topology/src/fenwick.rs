//! A Fenwick (binary indexed) tree over non-negative integer weights,
//! supporting O(log n) point updates and O(log n) weighted sampling.
//!
//! This is the engine behind [`ScaleFreeTopology`]: the community
//! grows by Poisson arrivals during a run, so the degree distribution
//! changes constantly and a static alias table would need O(n)
//! rebuilds per arrival. The Fenwick tree instead supports:
//!
//! * `add(i, delta)` — adjust one weight,
//! * `total()` — current weight sum,
//! * `sample_index(u)` — find the smallest index whose prefix sum
//!   exceeds a uniform draw `u ∈ [0, total)`,
//!
//! all in O(log n).
//!
//! [`ScaleFreeTopology`]: crate::scale_free::ScaleFreeTopology

/// Fenwick tree over `u64` weights.
#[derive(Clone, Debug, Default)]
pub struct Fenwick {
    /// 1-based partial sums, `tree[0]` unused.
    tree: Vec<u64>,
    /// Number of logical slots.
    len: usize,
}

impl Fenwick {
    /// An empty tree.
    pub fn new() -> Self {
        Fenwick::default()
    }

    /// A tree with `n` zero-weight slots.
    pub fn with_len(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
            len: n,
        }
    }

    /// Number of slots (including zero-weight ones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a new slot with the given weight, returning its index.
    pub fn push(&mut self, weight: u64) -> usize {
        if self.tree.is_empty() {
            // Slot 0 of the 1-based tree array is a sentinel.
            self.tree.push(0);
        }
        let i = self.len;
        self.len += 1;
        self.tree.push(0);
        // Initialize the new internal node from already-stored prefix
        // information, then add the weight.
        let pos = self.len; // 1-based
        let lsb = pos & pos.wrapping_neg();
        // Sum of the (pos-lsb, pos-1] range already stored:
        let mut sum = 0;
        let mut j = pos - 1;
        let stop = pos - lsb;
        while j > stop {
            sum += self.tree[j];
            j -= j & j.wrapping_neg();
        }
        self.tree[pos] = sum;
        if weight > 0 {
            self.add(i, weight as i64);
        }
        i
    }

    /// Adds `delta` to slot `i`'s weight.
    ///
    /// # Panics
    /// In debug builds, if the resulting weight would underflow below
    /// zero (weights are unsigned).
    pub fn add(&mut self, i: usize, delta: i64) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        debug_assert!(
            delta >= 0 || self.weight(i) as i64 + delta >= 0,
            "weight underflow at slot {i}"
        );
        let mut pos = i + 1;
        while pos <= self.len {
            self.tree[pos] = (self.tree[pos] as i64 + delta) as u64;
            pos += pos & pos.wrapping_neg();
        }
    }

    /// The weight of slot `i`.
    pub fn weight(&self, i: usize) -> u64 {
        self.prefix_sum(i + 1) - self.prefix_sum(i)
    }

    /// Sum of weights of slots `[0, n)`.
    pub fn prefix_sum(&self, n: usize) -> u64 {
        let mut pos = n.min(self.len);
        let mut sum = 0;
        while pos > 0 {
            sum += self.tree[pos];
            pos -= pos & pos.wrapping_neg();
        }
        sum
    }

    /// Total weight.
    pub fn total(&self) -> u64 {
        self.prefix_sum(self.len)
    }

    /// Finds the smallest index `i` such that `prefix_sum(i + 1) > u`,
    /// i.e. samples slot `i` with probability `weight(i) / total()`
    /// when `u` is uniform on `[0, total())`.
    ///
    /// Returns `None` if `u >= total()` (in particular when the tree
    /// is empty or all weights are zero).
    pub fn sample_index(&self, mut u: u64) -> Option<usize> {
        if u >= self.total() {
            return None;
        }
        let mut pos = 0usize; // 1-based cursor
        let mut step = self.len.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= self.len && self.tree[next] <= u {
                u -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        Some(pos) // pos is 0-based index of the sampled slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_tree() {
        let f = Fenwick::new();
        assert_eq!(f.len(), 0);
        assert!(f.is_empty());
        assert_eq!(f.total(), 0);
        assert_eq!(f.sample_index(0), None);
    }

    #[test]
    fn push_and_weights() {
        let mut f = Fenwick::new();
        assert_eq!(f.push(5), 0);
        assert_eq!(f.push(0), 1);
        assert_eq!(f.push(3), 2);
        assert_eq!(f.weight(0), 5);
        assert_eq!(f.weight(1), 0);
        assert_eq!(f.weight(2), 3);
        assert_eq!(f.total(), 8);
    }

    #[test]
    fn add_and_prefix_sums() {
        let mut f = Fenwick::with_len(4);
        f.add(0, 1);
        f.add(1, 2);
        f.add(2, 3);
        f.add(3, 4);
        assert_eq!(f.prefix_sum(0), 0);
        assert_eq!(f.prefix_sum(1), 1);
        assert_eq!(f.prefix_sum(2), 3);
        assert_eq!(f.prefix_sum(3), 6);
        assert_eq!(f.prefix_sum(4), 10);
        f.add(1, -2);
        assert_eq!(f.prefix_sum(4), 8);
        assert_eq!(f.weight(1), 0);
    }

    #[test]
    fn sample_index_boundaries() {
        let mut f = Fenwick::new();
        f.push(2); // covers u in {0, 1}
        f.push(3); // covers u in {2, 3, 4}
        assert_eq!(f.sample_index(0), Some(0));
        assert_eq!(f.sample_index(1), Some(0));
        assert_eq!(f.sample_index(2), Some(1));
        assert_eq!(f.sample_index(4), Some(1));
        assert_eq!(f.sample_index(5), None);
    }

    #[test]
    fn zero_weight_slots_never_sampled() {
        let mut f = Fenwick::new();
        f.push(0);
        f.push(7);
        f.push(0);
        for u in 0..7 {
            assert_eq!(f.sample_index(u), Some(1));
        }
    }

    #[test]
    fn sampling_distribution_matches_weights() {
        let mut f = Fenwick::new();
        let weights = [1u64, 2, 3, 4, 10];
        for &w in &weights {
            f.push(w);
        }
        let total = f.total();
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 5];
        let trials = 200_000;
        for _ in 0..trials {
            let u = rng.gen_range(0..total);
            counts[f.sample_index(u).unwrap()] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = trials as f64 * w as f64 / total as f64;
            let got = counts[i] as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.max(30.0).sqrt() * 3.0,
                "slot {i}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_out_of_bounds_panics() {
        let mut f = Fenwick::with_len(2);
        f.add(2, 1);
    }

    #[test]
    fn push_after_adds_keeps_prefixes_consistent() {
        // Regression guard for the internal-node initialization in
        // `push`: interleave pushes and adds, verify against a naive
        // vector.
        let mut f = Fenwick::new();
        let mut naive: Vec<u64> = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for round in 0..200 {
            if naive.is_empty() || rng.gen_bool(0.4) {
                let w = rng.gen_range(0..10u64);
                f.push(w);
                naive.push(w);
            } else {
                let i = rng.gen_range(0..naive.len());
                let delta = rng.gen_range(0..5u64);
                f.add(i, delta as i64);
                naive[i] += delta;
            }
            let n = naive.len();
            let picks = [0, n / 2, n];
            for &p in &picks {
                let expect: u64 = naive[..p].iter().sum();
                assert_eq!(f.prefix_sum(p), expect, "round {round}, prefix {p}");
            }
        }
    }

    proptest! {
        /// Fenwick prefix sums always equal naive prefix sums, under
        /// arbitrary interleavings of pushes and weight increments.
        #[test]
        fn matches_naive_model(ops in proptest::collection::vec(
            (proptest::bool::ANY, 0usize..64, 0u64..100), 1..200)
        ) {
            let mut f = Fenwick::new();
            let mut naive: Vec<u64> = Vec::new();
            for (push, idx, w) in ops {
                if push || naive.is_empty() {
                    f.push(w);
                    naive.push(w);
                } else {
                    let i = idx % naive.len();
                    f.add(i, w as i64);
                    naive[i] += w;
                }
            }
            for i in 0..=naive.len() {
                prop_assert_eq!(f.prefix_sum(i), naive[..i].iter().sum::<u64>());
            }
            for (i, &w) in naive.iter().enumerate() {
                prop_assert_eq!(f.weight(i), w);
            }
        }

        /// sample_index(u) returns the unique slot whose cumulative
        /// range contains u.
        #[test]
        fn sample_inverts_prefix_sum(
            weights in proptest::collection::vec(0u64..50, 1..64),
            u_frac in 0.0f64..1.0,
        ) {
            let mut f = Fenwick::new();
            for &w in &weights {
                f.push(w);
            }
            let total = f.total();
            prop_assume!(total > 0);
            let u = ((total as f64) * u_frac) as u64;
            let u = u.min(total - 1);
            let i = f.sample_index(u).unwrap();
            prop_assert!(f.prefix_sum(i) <= u);
            prop_assert!(u < f.prefix_sum(i + 1));
        }
    }
}

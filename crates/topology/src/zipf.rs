//! The Zipf topology: a *direct* power-law over arrival rank.
//!
//! §3 of the paper says only that *"the probability of a node being
//! chosen as the potential respondent is distributed according to a
//! power-law"*. [`ScaleFreeTopology`](crate::scale_free::ScaleFreeTopology)
//! realizes that through Barabási–Albert degrees; this module is the
//! alternative literal reading — peer `i` (in arrival order) is
//! chosen with probability proportional to `(i + 1)^-s` — with no
//! graph at all.
//!
//! The two readings differ in how much probability mass sits on the
//! founding members: under Zipf with `s = 1`, the 500 founders of a
//! 5 500-peer community absorb ≈ 72% of respondent/introducer choices
//! (`ln 500 / ln 5500`), versus ≈ 35% under BA degrees. The
//! `ablation_topology` bench quantifies what that does to the
//! admission figures.

use crate::fenwick::Fenwick;
use crate::Topology;
use rand::{Rng, RngCore};
use replend_types::PeerId;
use std::collections::HashMap;

/// Fixed-point scale for the Fenwick weights.
const WEIGHT_SCALE: f64 = 1_000_000.0;

/// Rank-based power-law population: the `r`-th peer to arrive is
/// sampled with probability ∝ `(r + 1)^-s`.
#[derive(Clone, Debug)]
pub struct ZipfTopology {
    /// Power-law exponent `s > 0`.
    s: f64,
    /// Slot (arrival rank) → peer; never reused.
    slot_peer: Vec<PeerId>,
    /// Peer → slot.
    slots: HashMap<PeerId, usize>,
    /// Sampling weights (0 for removed peers).
    weights: Fenwick,
    /// Dense list of live slots for O(1) uniform sampling.
    live: Vec<u32>,
    /// Position of each live slot in `live`.
    live_pos: HashMap<u32, usize>,
}

impl ZipfTopology {
    /// A new topology with exponent `s` (clamped to at least 0.01).
    pub fn new(s: f64) -> Self {
        Self::with_capacity(0, s)
    }

    /// A new topology with pre-allocated capacity.
    pub fn with_capacity(n: usize, s: f64) -> Self {
        ZipfTopology {
            s: s.max(0.01),
            slot_peer: Vec::with_capacity(n),
            slots: HashMap::with_capacity(n),
            weights: Fenwick::new(),
            live: Vec::with_capacity(n),
            live_pos: HashMap::with_capacity(n),
        }
    }

    /// The configured exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// The fixed-point weight of arrival rank `rank` (0-based).
    fn rank_weight(&self, rank: usize) -> u64 {
        let w = WEIGHT_SCALE * ((rank + 1) as f64).powf(-self.s);
        (w.round() as u64).max(1)
    }

    fn sample_slot(&self, rng: &mut dyn RngCore, exclude_slot: Option<usize>) -> Option<usize> {
        let total = self.weights.total();
        if total == 0 {
            return None;
        }
        if self.live.len() < 2 && exclude_slot.is_some() {
            let only = *self.live.first()? as usize;
            return if Some(only) == exclude_slot {
                None
            } else {
                Some(only)
            };
        }
        // Bounded rejection (the head rank can hold a large share),
        // then uniform fallback.
        for _ in 0..64 {
            let u = rng.gen_range(0..total);
            let slot = self.weights.sample_index(u)?;
            if Some(slot) != exclude_slot {
                return Some(slot);
            }
        }
        let n = self.live.len();
        for _ in 0..64 {
            let slot = self.live[rng.gen_range(0..n)] as usize;
            if Some(slot) != exclude_slot {
                return Some(slot);
            }
        }
        None
    }
}

impl Topology for ZipfTopology {
    fn add_peer(&mut self, peer: PeerId, _rng: &mut dyn RngCore) {
        if self.slots.contains_key(&peer) {
            return;
        }
        let slot = self.slot_peer.len();
        self.slot_peer.push(peer);
        self.slots.insert(peer, slot);
        let pushed = self.weights.push(self.rank_weight(slot));
        debug_assert_eq!(pushed, slot);
        self.live_pos.insert(slot as u32, self.live.len());
        self.live.push(slot as u32);
    }

    fn remove_peer(&mut self, peer: PeerId) {
        let Some(slot) = self.slots.remove(&peer) else {
            return;
        };
        let w = self.weights.weight(slot);
        self.weights.add(slot, -(w as i64));
        let pos = self
            .live_pos
            .remove(&(slot as u32))
            .expect("live slot tracked");
        let last = self.live.len() - 1;
        self.live.swap(pos, last);
        self.live.pop();
        if pos < self.live.len() {
            self.live_pos.insert(self.live[pos], pos);
        }
    }

    fn len(&self) -> usize {
        self.live.len()
    }

    fn contains(&self, peer: PeerId) -> bool {
        self.slots.contains_key(&peer)
    }

    fn sample(&self, rng: &mut dyn RngCore, exclude: Option<PeerId>) -> Option<PeerId> {
        let ex = exclude.and_then(|p| self.slots.get(&p).copied());
        self.sample_slot(rng, ex).map(|s| self.slot_peer[s])
    }

    fn sample_uniform(&self, rng: &mut dyn RngCore, exclude: Option<PeerId>) -> Option<PeerId> {
        let ex = exclude.and_then(|p| self.slots.get(&p).copied());
        let n = self.live.len();
        if n == 0 {
            return None;
        }
        if n == 1 {
            let only = self.live[0] as usize;
            return if Some(only) == ex {
                None
            } else {
                Some(self.slot_peer[only])
            };
        }
        match ex.and_then(|s| self.live_pos.get(&(s as u32)).copied()) {
            None => Some(self.slot_peer[self.live[rng.gen_range(0..n)] as usize]),
            Some(ex_pos) => {
                let mut i = rng.gen_range(0..n - 1);
                if i >= ex_pos {
                    i += 1;
                }
                Some(self.slot_peer[self.live[i] as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grown(n: u64, s: f64) -> (ZipfTopology, StdRng) {
        let mut rng = StdRng::seed_from_u64(31);
        let mut t = ZipfTopology::new(s);
        for p in 0..n {
            t.add_peer(PeerId(p), &mut rng);
        }
        (t, rng)
    }

    #[test]
    fn empty_and_singleton() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = ZipfTopology::new(1.0);
        assert_eq!(t.sample(&mut rng, None), None);
        t.add_peer(PeerId(0), &mut rng);
        assert_eq!(t.sample(&mut rng, None), Some(PeerId(0)));
        assert_eq!(t.sample(&mut rng, Some(PeerId(0))), None);
    }

    #[test]
    fn early_arrivals_dominate() {
        let (t, mut rng) = grown(1000, 1.0);
        let trials = 100_000;
        let mut first_hits = 0usize;
        let mut late_hits = 0usize;
        for _ in 0..trials {
            match t.sample(&mut rng, None).unwrap() {
                PeerId(0) => first_hits += 1,
                PeerId(999) => late_hits += 1,
                _ => {}
            }
        }
        // P(rank 0) / P(rank 999) = 1000 under s = 1.
        assert!(
            first_hits > late_hits * 100,
            "rank 0 hit {first_hits}, rank 999 hit {late_hits}"
        );
    }

    #[test]
    fn head_mass_matches_harmonic_ratio() {
        // Under s = 1, the first 100 of 1000 peers hold
        // H(100)/H(1000) ≈ 0.69 of the mass.
        let (t, mut rng) = grown(1000, 1.0);
        let trials = 200_000;
        let mut head = 0usize;
        for _ in 0..trials {
            if t.sample(&mut rng, None).unwrap().raw() < 100 {
                head += 1;
            }
        }
        let share = head as f64 / trials as f64;
        let expected = (1..=100).map(|i| 1.0 / i as f64).sum::<f64>()
            / (1..=1000).map(|i| 1.0 / i as f64).sum::<f64>();
        assert!(
            (share - expected).abs() < 0.02,
            "head share {share} vs harmonic {expected}"
        );
    }

    #[test]
    fn exclusion_respected() {
        let (t, mut rng) = grown(50, 1.2);
        for _ in 0..5_000 {
            assert_ne!(t.sample(&mut rng, Some(PeerId(0))), Some(PeerId(0)));
        }
    }

    #[test]
    fn removal_stops_sampling() {
        let (mut t, mut rng) = grown(20, 1.0);
        t.remove_peer(PeerId(0));
        assert!(!t.contains(PeerId(0)));
        assert_eq!(t.len(), 19);
        for _ in 0..5_000 {
            assert_ne!(t.sample(&mut rng, None), Some(PeerId(0)));
            assert_ne!(t.sample_uniform(&mut rng, None), Some(PeerId(0)));
        }
        t.remove_peer(PeerId(0));
        assert_eq!(t.len(), 19);
    }

    #[test]
    fn uniform_sampling_ignores_rank() {
        let (t, mut rng) = grown(100, 1.5);
        let trials = 200_000;
        let mut head = 0usize;
        for _ in 0..trials {
            if t.sample_uniform(&mut rng, None).unwrap().raw() < 10 {
                head += 1;
            }
        }
        let share = head as f64 / trials as f64;
        assert!((share - 0.1).abs() < 0.01, "uniform head share {share}");
    }

    #[test]
    fn duplicate_add_is_noop() {
        let (mut t, mut rng) = grown(5, 1.0);
        t.add_peer(PeerId(2), &mut rng);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn exponent_clamped() {
        assert!(ZipfTopology::new(-3.0).exponent() > 0.0);
    }
}

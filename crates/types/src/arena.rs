//! Dense slot-arena primitives for allocation-free hot paths.
//!
//! The reputation engine (and any future subsystem with a large,
//! churning object population) stores its records in contiguous
//! `Vec`s indexed by a small [`Handle`] instead of hashing a full key
//! per access. The pieces here are deliberately unbundled so a user
//! can hang *several* parallel arrays (hot fields split
//! struct-of-arrays from cold ones) off one allocation of slots:
//!
//! * [`Handle`] — an opaque `u32` slot index. Handles are **stable**:
//!   a record keeps its handle for its whole lifetime, across any
//!   amount of churn around it.
//! * [`SlotAllocator`] — the free-list that hands out handles.
//!   Vacated slots are recycled LIFO, so a long-lived population with
//!   churn stays dense instead of growing without bound.
//! * [`InlineList`] — a tiny list that stores up to `N` elements
//!   inline and only spills to the heap beyond that; for the many
//!   small per-key lists (DHT replica assignments) that a `Vec` would
//!   put behind one heap allocation each.
//!
//! Everything is deterministic: allocation order depends only on the
//! sequence of `alloc`/`release` calls, never on hashing or time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable index into a slot arena.
///
/// `Handle` is deliberately not constructible from arbitrary integers
/// outside this module (other than [`Handle::from_index`], for
/// storage layers that persist them): arenas hand them out via
/// [`SlotAllocator::alloc`] and they stay valid until released.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Handle(u32);

impl Handle {
    /// The slot index this handle names, for indexing parallel arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a handle from a raw slot index.
    ///
    /// # Panics
    /// If `index` exceeds `u32::MAX` (the arena's capacity limit).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        assert!(index <= u32::MAX as usize, "slot index exceeds u32 arena");
        Handle(index as u32)
    }
}

impl fmt::Debug for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot#{}", self.0)
    }
}

/// Result of one [`SlotAllocator::alloc`]: the caller must push fresh
/// entries onto its parallel arrays for a [`SlotAlloc::Fresh`] handle
/// and overwrite existing entries for a [`SlotAlloc::Reused`] one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotAlloc {
    /// A never-used slot one past the previous end of the arrays.
    Fresh(Handle),
    /// A recycled slot; the arrays already have (stale) entries at it.
    Reused(Handle),
}

impl SlotAlloc {
    /// The allocated handle, fresh or reused.
    #[inline]
    pub fn handle(self) -> Handle {
        match self {
            SlotAlloc::Fresh(h) | SlotAlloc::Reused(h) => h,
        }
    }
}

/// The free-list behind a dense slot arena.
///
/// The allocator tracks only slot occupancy — the data lives in
/// whatever parallel `Vec`s the caller maintains. Released handles
/// are recycled in LIFO order, which keeps reuse deterministic and
/// cache-friendly (the most recently vacated slot is the most likely
/// to still be warm).
#[derive(Clone, Debug, Default)]
pub struct SlotAllocator {
    /// Vacated handles, reused from the back.
    free: Vec<Handle>,
    /// Total slots ever created (`== parallel array length`).
    capacity: u32,
}

impl SlotAllocator {
    /// An empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a slot, recycling the most recently released one if
    /// any. On [`SlotAlloc::Fresh`] the caller owes one `push` per
    /// parallel array.
    #[inline]
    pub fn alloc(&mut self) -> SlotAlloc {
        match self.free.pop() {
            Some(h) => SlotAlloc::Reused(h),
            None => {
                let h = Handle(self.capacity);
                self.capacity = self
                    .capacity
                    .checked_add(1)
                    .expect("slot arena exceeds u32 capacity");
                SlotAlloc::Fresh(h)
            }
        }
    }

    /// Returns `handle` to the free list.
    ///
    /// Releasing a handle twice (without an intervening `alloc`
    /// returning it) is a caller bug: the slot would be handed out to
    /// two owners. The allocator does not scan for it — the caller's
    /// occupancy index (e.g. a `PeerId → Handle` map) is the guard.
    #[inline]
    pub fn release(&mut self, handle: Handle) {
        debug_assert!(handle.0 < self.capacity, "released a foreign handle");
        self.free.push(handle);
    }

    /// Rebuilds an allocator from persisted parts: `capacity` slots
    /// ever created, with `free` vacated in the given order (oldest
    /// release first, exactly as [`SlotAllocator::free_handles`]
    /// reports it). The restored allocator recycles slots in the same
    /// LIFO order as the original — required for restored arenas to
    /// stay bit-identical with the pre-persistence timeline under
    /// further churn.
    ///
    /// # Panics
    /// If any freed handle names a slot at or beyond `capacity`.
    pub fn from_parts(capacity: u32, free: Vec<Handle>) -> Self {
        assert!(
            free.iter().all(|h| h.0 < capacity),
            "freed handle beyond arena capacity"
        );
        SlotAllocator { free, capacity }
    }

    /// The vacated slots awaiting reuse, oldest release first (the
    /// back of the slice is recycled next). Feed this to
    /// [`SlotAllocator::from_parts`] to persist the allocator.
    #[inline]
    pub fn free_handles(&self) -> &[Handle] {
        &self.free
    }

    /// Total slots ever created — the required length of every
    /// parallel array.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Currently occupied slots.
    #[inline]
    pub fn live(&self) -> usize {
        self.capacity as usize - self.free.len()
    }
}

/// A list that stores up to `N` elements inline and spills to a `Vec`
/// beyond that.
///
/// Intended for populations of many short lists (the DHT replica-key
/// index holds one per replica key, nearly always of length 1): the
/// common case costs zero heap allocations, and a spilled list keeps
/// its heap buffer for reuse instead of shrinking back.
#[derive(Clone, Debug)]
pub struct InlineList<T, const N: usize> {
    /// Inline storage; meaningful only while not spilled.
    inline: [T; N],
    /// Element count while inline (the spill's `len()` governs after).
    len: u32,
    /// True once elements moved to `spill` (they never move back).
    spilled: bool,
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineList<T, N> {
    /// An empty list.
    pub fn new() -> Self {
        InlineList {
            inline: [T::default(); N],
            len: 0,
            spilled: false,
            spill: Vec::new(),
        }
    }

    /// Appends an element, spilling to the heap only when the inline
    /// capacity `N` is exceeded.
    pub fn push(&mut self, value: T) {
        if !self.spilled {
            if (self.len as usize) < N {
                self.inline[self.len as usize] = value;
                self.len += 1;
                return;
            }
            self.spill.reserve(N + 1);
            self.spill.extend_from_slice(&self.inline[..N]);
            self.spilled = true;
        }
        self.spill.push(value);
    }

    /// The elements, in insertion order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        if self.spilled {
            &self.spill
        } else {
            &self.inline[..self.len as usize]
        }
    }

    /// Keeps only the elements matching `keep`, preserving order.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        if self.spilled {
            self.spill.retain(|x| keep(x));
            return;
        }
        let mut write = 0usize;
        for read in 0..self.len as usize {
            if keep(&self.inline[read]) {
                self.inline[write] = self.inline[read];
                write += 1;
            }
        }
        self.len = write as u32;
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        if self.spilled {
            self.spill.len()
        } else {
            self.len as usize
        }
    }

    /// True when the list holds nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineList<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_dense_and_fresh_first() {
        let mut a = SlotAllocator::new();
        assert_eq!(a.alloc(), SlotAlloc::Fresh(Handle(0)));
        assert_eq!(a.alloc(), SlotAlloc::Fresh(Handle(1)));
        assert_eq!(a.alloc(), SlotAlloc::Fresh(Handle(2)));
        assert_eq!(a.capacity(), 3);
        assert_eq!(a.live(), 3);
    }

    #[test]
    fn release_recycles_lifo() {
        let mut a = SlotAllocator::new();
        let h0 = a.alloc().handle();
        let h1 = a.alloc().handle();
        let _h2 = a.alloc().handle();
        a.release(h0);
        a.release(h1);
        assert_eq!(a.live(), 1);
        // LIFO: the most recently released slot comes back first.
        assert_eq!(a.alloc(), SlotAlloc::Reused(h1));
        assert_eq!(a.alloc(), SlotAlloc::Reused(h0));
        // Exhausted free list falls through to a fresh slot.
        assert_eq!(a.alloc(), SlotAlloc::Fresh(Handle(3)));
        assert_eq!(a.capacity(), 4);
    }

    #[test]
    fn from_parts_restores_recycle_order() {
        let mut a = SlotAllocator::new();
        let h0 = a.alloc().handle();
        let h1 = a.alloc().handle();
        let _h2 = a.alloc().handle();
        a.release(h0);
        a.release(h1);

        let mut b = SlotAllocator::from_parts(a.capacity() as u32, a.free_handles().to_vec());
        assert_eq!(b.capacity(), a.capacity());
        assert_eq!(b.live(), a.live());
        // Identical future allocation sequence.
        for _ in 0..3 {
            assert_eq!(a.alloc(), b.alloc());
        }
    }

    #[test]
    #[should_panic(expected = "freed handle beyond arena capacity")]
    fn from_parts_rejects_foreign_handles() {
        let _ = SlotAllocator::from_parts(2, vec![Handle::from_index(2)]);
    }

    #[test]
    fn handle_index_round_trip() {
        let h = Handle::from_index(41);
        assert_eq!(h.index(), 41);
        assert_eq!(format!("{h:?}"), "slot#41");
    }

    #[test]
    fn inline_list_stays_inline_up_to_n() {
        let mut l: InlineList<u64, 2> = InlineList::new();
        assert!(l.is_empty());
        l.push(10);
        l.push(20);
        assert_eq!(l.as_slice(), &[10, 20]);
        assert!(!l.spilled, "two elements fit inline");
        l.push(30);
        assert!(l.spilled, "third element spills");
        assert_eq!(l.as_slice(), &[10, 20, 30]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn inline_list_retain_both_modes() {
        let mut l: InlineList<u32, 2> = InlineList::new();
        l.push(1);
        l.push(2);
        l.retain(|&x| x != 1);
        assert_eq!(l.as_slice(), &[2]);

        let mut big: InlineList<u32, 2> = InlineList::new();
        for x in 0..6 {
            big.push(x);
        }
        big.retain(|&x| x % 2 == 0);
        assert_eq!(big.as_slice(), &[0, 2, 4]);
        big.retain(|_| false);
        assert!(big.is_empty());
    }

    #[test]
    fn inline_list_preserves_insertion_order() {
        let mut l: InlineList<u8, 1> = InlineList::new();
        for x in [7, 3, 9, 1] {
            l.push(x);
        }
        assert_eq!(l.as_slice(), &[7, 3, 9, 1]);
    }
}

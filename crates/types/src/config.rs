//! Simulation configuration mirroring **Table 1** of the paper.
//!
//! ```text
//! Parameter     Description                                        Default
//! numInit       Initial number of peers in the system              500
//! numTrans      Number of transactions                             500 000
//! numSM         Number of score managers                           6
//! λ             Rate of new peer arrival (per time unit)           0.01
//! f_u           Fraction of new entrants who are uncooperative     0.25
//! f_n           Fraction of cooperative peers who are naive        0.3
//! err_sel       Fraction of selective introductions that are wrong 10%
//! topology      Network topology (Random, Powerlaw)                Powerlaw
//! T             Waiting period for introductions                   1000
//! auditTrans    Transactions after which a new node is audited     20
//! introAmt      Amount of reputation an introducer gives up        0.1
//! rwd           Reward for introducing a cooperative peer          0.02
//! minIntro      Minimum reputation required to introduce a peer    2·introAmt†
//! ```
//!
//! † The `minIntro` formula is unreadable in the surviving copy of the
//! paper; the text constrains it to be *greater than* `introAmt` (so
//! reputations cannot go negative) and large enough that uncooperative
//! peers "never manage to raise their reputation beyond the threshold
//! required to recommend new peers" (§4.5), while cooperative
//! newcomers must clear it quickly (Figure 6 shows near-total
//! admission of cooperative arrivals). `2·introAmt` satisfies all
//! three; see DESIGN.md §4.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// Which interaction topology drives respondent / introducer choice
/// (§3: *"We model two different topologies: 1) random and 2)
/// scale-free"*).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum TopologyKind {
    /// All nodes equally likely to be chosen as respondent.
    Random,
    /// Node chosen with probability distributed according to a
    /// power law (degree-proportional over a Barabási–Albert graph).
    /// Table-1 default.
    #[default]
    Powerlaw,
    /// Alternative literal reading of §3's power law: probability
    /// proportional to `(arrival rank + 1)^-1` with no graph
    /// structure (Zipf over seniority). Compared against the
    /// Barabási–Albert reading by the `ablation_topology` bench.
    Zipf,
}

impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyKind::Random => write!(f, "random"),
            TopologyKind::Powerlaw => write!(f, "powerlaw"),
            TopologyKind::Zipf => write!(f, "zipf"),
        }
    }
}

/// Parameters of the reputation-lending protocol itself (§2–3).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct LendingParams {
    /// `introAmt` — reputation the introducer stakes on a newcomer.
    pub intro_amt: f64,
    /// `rwd` — reward paid to the introducer when the audited
    /// newcomer turns out cooperative.
    pub reward: f64,
    /// `T` — waiting period (ticks) between an introduction request
    /// and the response.
    pub wait_period: u64,
    /// `auditTrans` — number of transactions the newcomer must
    /// complete before its score managers audit it.
    pub audit_trans: u32,
    /// Reputation the newcomer must hold at audit time for the
    /// verdict to be "satisfactory" (see DESIGN.md §4 — the paper
    /// says only *"deemed satisfactory based on its reputation
    /// value"*).
    pub audit_threshold: f64,
    /// Explicit `minIntro` override. When `None`, the derived default
    /// `2·introAmt` is used.
    pub min_intro_override: Option<f64>,
}

impl LendingParams {
    /// `minIntro` — minimum reputation an introducer must hold.
    ///
    /// Defaults to `2·introAmt` (0.2 at the Table-1 defaults): the
    /// paper's constraints are that it exceed `introAmt` (reputations
    /// must not go negative, §3) and that uncooperative peers (whose
    /// reputation settles well below `introAmt`) never reach it
    /// (§4.5), while cooperative newcomers must reach it quickly —
    /// Figure 6 shows ~98% admission when all entrants are
    /// cooperative.
    #[inline]
    pub fn min_intro(&self) -> f64 {
        self.min_intro_override.unwrap_or(2.0 * self.intro_amt)
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.intro_amt) {
            return Err(ConfigError::OutOfRange {
                param: "intro_amt",
                value: self.intro_amt,
                expected: "[0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&self.reward) {
            return Err(ConfigError::OutOfRange {
                param: "reward",
                value: self.reward,
                expected: "[0, 1]",
            });
        }
        if !(0.0..=1.0).contains(&self.audit_threshold) {
            return Err(ConfigError::OutOfRange {
                param: "audit_threshold",
                value: self.audit_threshold,
                expected: "[0, 1]",
            });
        }
        let min_intro = self.min_intro();
        if !(0.0..=1.0).contains(&min_intro) {
            return Err(ConfigError::OutOfRange {
                param: "min_intro",
                value: min_intro,
                expected: "[0, 1]",
            });
        }
        // §3: "By keeping minIntro greater than introAmt we also
        // prevent peer reputation value from going below zero."
        if min_intro <= self.intro_amt {
            return Err(ConfigError::Inconsistent {
                what: "min_intro must be strictly greater than intro_amt",
            });
        }
        if self.audit_trans == 0 {
            return Err(ConfigError::Inconsistent {
                what: "audit_trans must be at least 1",
            });
        }
        Ok(())
    }
}

impl Default for LendingParams {
    /// The Table-1 defaults.
    fn default() -> Self {
        LendingParams {
            intro_amt: 0.1,
            reward: 0.02,
            wait_period: 1000,
            audit_trans: 20,
            audit_threshold: 0.5,
            min_intro_override: None,
        }
    }
}

/// Population / workload parameters of a simulation run.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct SimParams {
    /// `numInit` — peers present (all cooperative) at time zero.
    pub num_init: usize,
    /// `numTrans` — simulation length in transaction ticks.
    pub num_trans: u64,
    /// `numSM` — score-manager replicas per peer.
    pub num_sm: usize,
    /// Engine shards the reputation backend partitions its subject
    /// store into (infrastructure knob, not a Table-1 parameter;
    /// results are byte-identical for every shard count). Default 1.
    pub num_shards: usize,
    /// Smallest `report_batch` size a multi-shard engine fans out
    /// over the thread pool; smaller batches (e.g. the per-tick two
    /// opinions) stay serial to skip the pool round trip.
    /// Infrastructure knob — results are byte-identical either way.
    /// Default 256.
    pub parallel_batch_min: usize,
    /// `λ` — Poisson arrival rate of new peers per tick.
    pub arrival_rate: f64,
    /// `f_u` — fraction of new entrants that are uncooperative.
    pub f_uncoop: f64,
    /// `f_n` — fraction of cooperative peers that are naive
    /// introducers (applies both to the initial population and to
    /// cooperative entrants; §4 preamble).
    pub f_naive: f64,
    /// `err_sel` — fraction of selective introductions of dishonest
    /// applicants that are (incorrectly) granted.
    pub err_sel: f64,
    /// Interaction topology.
    pub topology: TopologyKind,
}

impl SimParams {
    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_init == 0 {
            return Err(ConfigError::Inconsistent {
                what: "num_init must be at least 1",
            });
        }
        if self.num_sm == 0 {
            return Err(ConfigError::Inconsistent {
                what: "num_sm must be at least 1",
            });
        }
        if self.num_shards == 0 {
            return Err(ConfigError::Inconsistent {
                what: "num_shards must be at least 1",
            });
        }
        if self.parallel_batch_min == 0 {
            return Err(ConfigError::Inconsistent {
                what: "parallel_batch_min must be at least 1",
            });
        }
        if !(self.arrival_rate.is_finite() && self.arrival_rate >= 0.0) {
            return Err(ConfigError::OutOfRange {
                param: "arrival_rate",
                value: self.arrival_rate,
                expected: "[0, ∞)",
            });
        }
        for (name, v) in [
            ("f_uncoop", self.f_uncoop),
            ("f_naive", self.f_naive),
            ("err_sel", self.err_sel),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ConfigError::OutOfRange {
                    param: name,
                    value: v,
                    expected: "[0, 1]",
                });
            }
        }
        Ok(())
    }
}

impl Default for SimParams {
    /// The Table-1 defaults.
    fn default() -> Self {
        SimParams {
            num_init: 500,
            num_trans: 500_000,
            num_sm: 6,
            num_shards: 1,
            parallel_batch_min: 256,
            arrival_rate: 0.01,
            f_uncoop: 0.25,
            f_naive: 0.3,
            err_sel: 0.10,
            topology: TopologyKind::Powerlaw,
        }
    }
}

/// The complete Table-1 configuration: workload plus protocol.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Table1 {
    /// Population / workload parameters.
    pub sim: SimParams,
    /// Lending-protocol parameters.
    pub lending: LendingParams,
}

impl Table1 {
    /// The paper's defaults, exactly as printed in Table 1.
    pub fn paper_defaults() -> Self {
        Table1::default()
    }

    /// Builder-style update of the arrival rate `λ`.
    #[must_use]
    pub fn with_arrival_rate(mut self, lambda: f64) -> Self {
        self.sim.arrival_rate = lambda;
        self
    }

    /// Builder-style update of the run length `numTrans`.
    #[must_use]
    pub fn with_num_trans(mut self, n: u64) -> Self {
        self.sim.num_trans = n;
        self
    }

    /// Builder-style update of the topology.
    #[must_use]
    pub fn with_topology(mut self, t: TopologyKind) -> Self {
        self.sim.topology = t;
        self
    }

    /// Builder-style update of the uncooperative entrant fraction.
    #[must_use]
    pub fn with_f_uncoop(mut self, f: f64) -> Self {
        self.sim.f_uncoop = f;
        self
    }

    /// Builder-style update of the naive-introducer fraction.
    #[must_use]
    pub fn with_f_naive(mut self, f: f64) -> Self {
        self.sim.f_naive = f;
        self
    }

    /// Builder-style update of `introAmt` (leaves `rwd` untouched).
    #[must_use]
    pub fn with_intro_amt(mut self, amt: f64) -> Self {
        self.lending.intro_amt = amt;
        self
    }

    /// Builder-style update of `introAmt` that also re-derives
    /// `rwd = 0.2 · introAmt`, as §4.3 does for the Figure-4/5 sweep.
    #[must_use]
    pub fn with_intro_amt_scaled_reward(mut self, amt: f64) -> Self {
        self.lending.intro_amt = amt;
        self.lending.reward = 0.2 * amt;
        self
    }

    /// Builder-style update of the initial population size.
    #[must_use]
    pub fn with_num_init(mut self, n: usize) -> Self {
        self.sim.num_init = n;
        self
    }

    /// Builder-style update of the score-manager count.
    #[must_use]
    pub fn with_num_sm(mut self, n: usize) -> Self {
        self.sim.num_sm = n;
        self
    }

    /// Builder-style update of the engine shard count.
    #[must_use]
    pub fn with_num_shards(mut self, n: usize) -> Self {
        self.sim.num_shards = n;
        self
    }

    /// Builder-style update of the sharded engine's parallel batch
    /// fan-out threshold.
    #[must_use]
    pub fn with_parallel_batch_min(mut self, n: usize) -> Self {
        self.sim.parallel_batch_min = n;
        self
    }

    /// Validates both halves of the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.sim.validate()?;
        self.lending.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let c = Table1::paper_defaults();
        assert_eq!(c.sim.num_init, 500);
        assert_eq!(c.sim.num_trans, 500_000);
        assert_eq!(c.sim.num_sm, 6);
        assert!((c.sim.arrival_rate - 0.01).abs() < 1e-12);
        assert!((c.sim.f_uncoop - 0.25).abs() < 1e-12);
        assert!((c.sim.f_naive - 0.3).abs() < 1e-12);
        assert!((c.sim.err_sel - 0.10).abs() < 1e-12);
        assert_eq!(c.sim.topology, TopologyKind::Powerlaw);
        assert_eq!(c.lending.wait_period, 1000);
        assert_eq!(c.lending.audit_trans, 20);
        assert!((c.lending.intro_amt - 0.1).abs() < 1e-12);
        assert!((c.lending.reward - 0.02).abs() < 1e-12);
    }

    #[test]
    fn defaults_validate() {
        Table1::paper_defaults().validate().unwrap();
    }

    #[test]
    fn default_min_intro_is_twice_intro_amt() {
        assert!((LendingParams::default().min_intro() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn min_intro_scales_with_large_intro_amt() {
        // At introAmt = 0.45 (top of the Figure-4 sweep): 0.9.
        let p = LendingParams {
            intro_amt: 0.45,
            ..LendingParams::default()
        };
        assert!((p.min_intro() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn min_intro_override_wins() {
        let p = LendingParams {
            min_intro_override: Some(0.7),
            ..LendingParams::default()
        };
        assert!((p.min_intro() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn min_intro_not_above_intro_amt_is_rejected() {
        let p = LendingParams {
            intro_amt: 0.4,
            min_intro_override: Some(0.3),
            ..LendingParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn scaled_reward_builder() {
        let c = Table1::paper_defaults().with_intro_amt_scaled_reward(0.25);
        assert!((c.lending.intro_amt - 0.25).abs() < 1e-12);
        assert!((c.lending.reward - 0.05).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_fractions() {
        assert!(Table1::paper_defaults()
            .with_f_uncoop(1.5)
            .validate()
            .is_err());
        assert!(Table1::paper_defaults()
            .with_f_naive(-0.1)
            .validate()
            .is_err());
        assert!(Table1::paper_defaults()
            .with_arrival_rate(f64::NAN)
            .validate()
            .is_err());
    }

    #[test]
    fn rejects_zero_audit_trans() {
        let mut c = Table1::paper_defaults();
        c.lending.audit_trans = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_empty_population_or_no_sms() {
        assert!(Table1::paper_defaults()
            .with_num_init(0)
            .validate()
            .is_err());
        assert!(Table1::paper_defaults().with_num_sm(0).validate().is_err());
    }

    #[test]
    fn shard_count_defaults_to_one_and_rejects_zero() {
        assert_eq!(Table1::paper_defaults().sim.num_shards, 1);
        assert!(Table1::paper_defaults()
            .with_num_shards(0)
            .validate()
            .is_err());
        assert!(Table1::paper_defaults()
            .with_num_shards(8)
            .validate()
            .is_ok());
    }

    #[test]
    fn parallel_batch_min_defaults_and_rejects_zero() {
        assert_eq!(Table1::paper_defaults().sim.parallel_batch_min, 256);
        assert!(Table1::paper_defaults()
            .with_parallel_batch_min(0)
            .validate()
            .is_err());
        assert!(Table1::paper_defaults()
            .with_parallel_batch_min(1)
            .validate()
            .is_ok());
    }

    #[test]
    fn error_messages_render() {
        let err = Table1::paper_defaults()
            .with_f_uncoop(2.0)
            .validate()
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("f_uncoop"), "got: {msg}");
    }

    #[test]
    fn table1_default_reward_is_20pct_of_intro_amt() {
        // Table 1's rwd = 0.02 is exactly 0.2 · introAmt (0.1) — the
        // relationship §4.3 makes explicit.
        let c = Table1::paper_defaults();
        assert!((c.lending.reward - 0.2 * c.lending.intro_amt).abs() < 1e-12);
    }
}

//! The host-calibration profile written by `replend calibrate` and
//! loaded by `run` / `serve` / `worker`.
//!
//! PR 4 made the parallel fan-out threshold a config knob
//! (`SimParams::parallel_batch_min`) with a hard-coded default guess;
//! this type carries the *measured* answer for a concrete host: the
//! batch size where fanning a report batch over the thread pool
//! starts beating the serial sweep, and the shard count that won the
//! sweep. The engine guarantees the knobs are byte-identity-safe
//! (`RocqEngine` results are independent of shard count and
//! threshold), so loading a profile can only change timing, never
//! output — pinned by the knob-invariance tests in `replend-tests`
//! and the byte-diff smoke step in CI.
//!
//! Precedence is **flags > profile > built-in defaults**: a profile
//! only fills knobs the user did not set explicitly on the command
//! line.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// Version stamp of the [`HostProfile`] payload. Bump on any field
/// change; loaders reject other versions (the wire envelope pins the
/// transport framing separately).
pub const HOST_PROFILE_VERSION: u32 = 1;

/// The sentinel [`HostProfile::parallel_batch_min`] meaning "the pool
/// never beat the serial sweep on this host" (e.g. a single-core
/// container): consumers set the engine threshold to `usize::MAX` so
/// every batch stays serial.
pub const POOL_NEVER_WINS: u64 = u64::MAX;

/// Measured parallelism profile of one host.
///
/// Produced by `replend calibrate` (see `docs/calibrate.md` for the
/// file format), consumed by `run`, `serve` and `worker` to pick
/// engine defaults. All fields describe *this* host; comparing or
/// reusing profiles across hosts is exactly the apples-to-oranges
/// mistake the `host` tag exists to catch.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostProfile {
    /// Payload version, always [`HOST_PROFILE_VERSION`] when valid.
    pub version: u32,
    /// Effective thread-pool size at calibration time (the same rule
    /// the engine's fan-out bypass uses: `RAYON_NUM_THREADS` when set,
    /// otherwise `available_parallelism`).
    pub threads: u32,
    /// Smallest batch size where the pool beat the serial sweep, or
    /// [`POOL_NEVER_WINS`] when it never did.
    pub parallel_batch_min: u64,
    /// Shard count that produced the best throughput in the sweep.
    pub num_shards: u32,
    /// Free-form host tag (e.g. the hostname) recorded at calibration
    /// time, so loaders and bench tooling can flag cross-host reuse.
    pub host: String,
}

impl HostProfile {
    /// Validates the structural invariants a loader relies on.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.version != HOST_PROFILE_VERSION {
            return Err(ConfigError::Inconsistent {
                what: "host profile version is not supported",
            });
        }
        if self.threads == 0 {
            return Err(ConfigError::Inconsistent {
                what: "host profile threads must be at least 1",
            });
        }
        if self.num_shards == 0 {
            return Err(ConfigError::Inconsistent {
                what: "host profile num_shards must be at least 1",
            });
        }
        if self.parallel_batch_min == 0 {
            return Err(ConfigError::Inconsistent {
                what: "host profile parallel_batch_min must be at least 1",
            });
        }
        Ok(())
    }

    /// The engine threshold this profile prescribes:
    /// [`POOL_NEVER_WINS`] (and anything above `usize::MAX`) saturates
    /// to `usize::MAX`, i.e. "never fan out".
    pub fn effective_batch_min(&self) -> usize {
        usize::try_from(self.parallel_batch_min).unwrap_or(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> HostProfile {
        HostProfile {
            version: HOST_PROFILE_VERSION,
            threads: 8,
            parallel_batch_min: 512,
            num_shards: 4,
            host: "calibrated-host".to_string(),
        }
    }

    #[test]
    fn valid_profile_passes() {
        assert_eq!(profile().validate(), Ok(()));
    }

    #[test]
    fn wrong_version_rejected() {
        let p = HostProfile {
            version: HOST_PROFILE_VERSION + 1,
            ..profile()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_fields_rejected() {
        for p in [
            HostProfile {
                threads: 0,
                ..profile()
            },
            HostProfile {
                num_shards: 0,
                ..profile()
            },
            HostProfile {
                parallel_batch_min: 0,
                ..profile()
            },
        ] {
            assert!(p.validate().is_err(), "{p:?}");
        }
    }

    #[test]
    fn pool_never_wins_saturates() {
        let p = HostProfile {
            parallel_batch_min: POOL_NEVER_WINS,
            ..profile()
        };
        assert_eq!(p.effective_batch_min(), usize::MAX);
        assert_eq!(profile().effective_batch_min(), 512);
    }
}

//! Error types shared across the workspace.
//!
//! Implemented by hand (no `thiserror`) per the workspace dependency
//! policy; the variants carry enough structure for tests to assert on
//! causes rather than on message strings.

use crate::id::PeerId;
use std::error::Error;
use std::fmt;

/// A configuration rejected by validation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ConfigError {
    /// A numeric parameter fell outside its documented range.
    OutOfRange {
        /// Parameter name as printed in Table 1 / the config structs.
        param: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable description of the accepted range.
        expected: &'static str,
    },
    /// Parameters are individually fine but mutually inconsistent.
    Inconsistent {
        /// Description of the violated relationship.
        what: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OutOfRange {
                param,
                value,
                expected,
            } => write!(f, "parameter {param} = {value} outside {expected}"),
            ConfigError::Inconsistent { what } => write!(f, "inconsistent configuration: {what}"),
        }
    }
}

impl Error for ConfigError {}

/// A violation of the lending / reputation protocol detected at
/// runtime.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ProtocolError {
    /// An operation referenced a peer unknown to the community.
    UnknownPeer(PeerId),
    /// A peer attempted to act before being admitted.
    NotAdmitted(PeerId),
    /// A second introduction arrived for a peer that already has one
    /// pending or granted — the "multiple introduction requests"
    /// attack of §2; score managers zero the peer's reputation.
    DuplicateIntroduction {
        /// The over-eager newcomer.
        newcomer: PeerId,
    },
    /// An introducer's reputation was below `minIntro`.
    InsufficientReputation {
        /// The would-be introducer.
        introducer: PeerId,
    },
    /// A peer asked for an introduction again before its waiting
    /// period elapsed.
    WaitingPeriodActive {
        /// The impatient newcomer.
        newcomer: PeerId,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            ProtocolError::NotAdmitted(p) => write!(f, "{p} is not admitted to the community"),
            ProtocolError::DuplicateIntroduction { newcomer } => {
                write!(f, "duplicate introduction detected for {newcomer}")
            }
            ProtocolError::InsufficientReputation { introducer } => {
                write!(f, "{introducer} lacks the minIntro reputation to introduce")
            }
            ProtocolError::WaitingPeriodActive { newcomer } => {
                write!(f, "{newcomer} must wait out the introduction period")
            }
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_displays_param() {
        let e = ConfigError::OutOfRange {
            param: "intro_amt",
            value: 2.0,
            expected: "[0, 1]",
        };
        assert_eq!(e.to_string(), "parameter intro_amt = 2 outside [0, 1]");
    }

    #[test]
    fn inconsistent_displays_reason() {
        let e = ConfigError::Inconsistent {
            what: "min_intro must be strictly greater than intro_amt",
        };
        assert!(e.to_string().contains("min_intro"));
    }

    #[test]
    fn protocol_errors_display() {
        let p = PeerId(9);
        assert!(ProtocolError::UnknownPeer(p).to_string().contains("peer#9"));
        assert!(ProtocolError::DuplicateIntroduction { newcomer: p }
            .to_string()
            .contains("duplicate"));
        assert!(ProtocolError::InsufficientReputation { introducer: p }
            .to_string()
            .contains("minIntro"));
        assert!(ProtocolError::WaitingPeriodActive { newcomer: p }
            .to_string()
            .contains("wait"));
        assert!(ProtocolError::NotAdmitted(p)
            .to_string()
            .contains("admitted"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&ConfigError::Inconsistent { what: "x" });
        assert_err(&ProtocolError::UnknownPeer(PeerId(0)));
    }
}

//! Simulation time.
//!
//! §3: *"We implemented a discrete event simulator where exactly one
//! resource transaction is scheduled in each unit of simulation
//! time."* Time is therefore a plain monotone counter of transaction
//! ticks; [`SimTime`] keeps it from being confused with counts or ids.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in transaction ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier` in ticks.
    #[inline]
    pub const fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// True if at least `delta` ticks have elapsed since `earlier`.
    ///
    /// Used to test expiry of the waiting period `T` of §2.
    #[inline]
    pub const fn elapsed_at_least(self, earlier: SimTime, delta: u64) -> bool {
        self.since(earlier) >= delta
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for SimTime {
    fn from(v: u64) -> Self {
        SimTime(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_since() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + 1000;
        assert_eq!(t1.ticks(), 1000);
        assert_eq!(t1.since(t0), 1000);
        assert_eq!(t0.since(t1), 0, "since() saturates, never underflows");
    }

    #[test]
    fn waiting_period_expiry() {
        // The introduction waiting period T = 1000 of Table 1.
        let requested = SimTime(500);
        assert!(!SimTime(1499).elapsed_at_least(requested, 1000));
        assert!(SimTime(1500).elapsed_at_least(requested, 1000));
        assert!(SimTime(1501).elapsed_at_least(requested, 1000));
    }

    #[test]
    fn add_assign_and_sub() {
        let mut t = SimTime(10);
        t += 5;
        assert_eq!(t, SimTime(15));
        assert_eq!(t - SimTime(10), 5);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn saturating_add_at_max() {
        let t = SimTime(u64::MAX);
        assert_eq!((t + 1).ticks(), u64::MAX);
    }
}

//! Incremental-accounting vocabulary: feedback batches, reputation
//! deltas, and compensated accumulators.
//!
//! The community samples its headline quantities (population mix,
//! mean cooperative/uncooperative reputation) every tick. Maintaining
//! them incrementally requires the reputation engine to *tell* the
//! state layer what changed instead of being polled per member:
//!
//! * [`Feedback`] — one post-transaction opinion, so a tick's reports
//!   can be handed to the engine as a single batch;
//! * [`ReputationDelta`] — "subject `s` moved from `old` to `new`",
//!   emitted by every engine mutation (reports, lending credits and
//!   debits, crash-recovery re-homings) and drained by the community
//!   to keep its aggregates in sync;
//! * [`KahanSum`] / [`MeanAcc`] — Neumaier-compensated accumulators,
//!   so millions of tiny `+delta`/`-delta` updates stay within a few
//!   ULPs of a from-scratch recount (the churn-oracle property test
//!   in `replend-core` pins this down).
//!
//! Everything here is deterministic: no hashing, no iteration-order
//! dependence — a requirement inherited from the workspace's
//! byte-identical same-seed guarantee.

use crate::id::PeerId;
use crate::reputation::Reputation;
use serde::{Deserialize, Serialize};

/// One post-transaction opinion, ready for batched delivery.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Feedback {
    /// The peer reporting the opinion.
    pub reporter: PeerId,
    /// The peer the opinion is about.
    pub subject: PeerId,
    /// The opinion value in `[0, 1]`.
    pub opinion: f64,
}

impl Feedback {
    /// A new feedback record.
    pub fn new(reporter: PeerId, subject: PeerId, opinion: f64) -> Self {
        Feedback {
            reporter,
            subject,
            opinion,
        }
    }
}

/// An observed change of one subject's aggregate reputation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReputationDelta {
    /// The subject whose aggregate moved.
    pub subject: PeerId,
    /// The aggregate before the mutation.
    pub old: Reputation,
    /// The aggregate after the mutation.
    pub new: Reputation,
}

impl ReputationDelta {
    /// The signed change `new − old`.
    #[inline]
    pub fn change(&self) -> f64 {
        self.new.value() - self.old.value()
    }

    /// True when the mutation left the aggregate bit-identical (such
    /// deltas may be skipped by consumers).
    #[inline]
    pub fn is_noop(&self) -> bool {
        self.old.value().to_bits() == self.new.value().to_bits()
    }
}

/// Neumaier-compensated running sum.
///
/// Plain `f64` `+=`/`-=` accounting drifts by ~1 ULP per update; over
/// the millions of updates of a paper-scale run that adds up. The
/// compensation term keeps the running sum within a few ULPs of the
/// mathematically exact value at O(1) cost per update, and the update
/// sequence is deterministic, preserving same-seed byte-identity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KahanSum {
    sum: f64,
    /// Running compensation for lost low-order bits.
    c: f64,
}

impl KahanSum {
    /// An empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `x` (use a negative value to subtract).
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        // Neumaier's branch: compensate from whichever operand lost
        // precision.
        if self.sum.abs() >= x.abs() {
            self.c += (self.sum - t) + x;
        } else {
            self.c += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.c
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A compensated mean over a dynamic population: supports adding a
/// member, removing a member, and shifting one member's value by a
/// delta — each O(1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MeanAcc {
    sum: KahanSum,
    n: usize,
}

impl MeanAcc {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Includes a new member currently holding `value`.
    #[inline]
    pub fn insert(&mut self, value: f64) {
        self.sum.add(value);
        self.n += 1;
    }

    /// Excludes a member currently holding `value`.
    ///
    /// # Panics
    /// If the accumulator is empty (an accounting bug upstream).
    #[inline]
    pub fn remove(&mut self, value: f64) {
        assert!(self.n > 0, "MeanAcc::remove on empty accumulator");
        self.sum.add(-value);
        self.n -= 1;
        if self.n == 0 {
            // No members: clear residual compensation so the next
            // population starts exact.
            self.sum.reset();
        }
    }

    /// Applies a member's value change `new − old`.
    #[inline]
    pub fn shift(&mut self, old: f64, new: f64) {
        self.sum.add(new - old);
    }

    /// Number of members included.
    #[inline]
    pub fn count(&self) -> usize {
        self.n
    }

    /// The current mean; `None` when empty.
    #[inline]
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum.value() / self.n as f64)
    }

    /// The current (compensated) sum.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_round_trip() {
        let f = Feedback::new(PeerId(1), PeerId(2), 0.75);
        assert_eq!(f.reporter, PeerId(1));
        assert_eq!(f.subject, PeerId(2));
        assert_eq!(f.opinion, 0.75);
    }

    #[test]
    fn delta_change_and_noop() {
        let d = ReputationDelta {
            subject: PeerId(3),
            old: Reputation::new(0.25),
            new: Reputation::new(0.75),
        };
        assert!((d.change() - 0.5).abs() < 1e-12);
        assert!(!d.is_noop());
        let same = ReputationDelta {
            subject: PeerId(3),
            old: Reputation::new(0.5),
            new: Reputation::new(0.5),
        };
        assert!(same.is_noop());
        assert_eq!(same.change(), 0.0);
    }

    #[test]
    fn kahan_beats_naive_on_pathological_sums() {
        // 1 + 2^-60 added a million times, then -1: the naive sum
        // loses every tiny addend; Kahan keeps them.
        let tiny = (2.0f64).powi(-60);
        let mut k = KahanSum::new();
        let mut naive = 0.0f64;
        k.add(1.0);
        naive += 1.0;
        for _ in 0..1_000_000 {
            k.add(tiny);
            naive += tiny;
        }
        k.add(-1.0);
        naive -= 1.0;
        let exact = tiny * 1e6;
        assert!((k.value() - exact).abs() < exact * 1e-9, "kahan {k:?}");
        assert!(
            (naive - exact).abs() > exact * 1e-3,
            "naive should have lost precision, got {naive}"
        );
    }

    #[test]
    fn mean_acc_tracks_membership() {
        let mut m = MeanAcc::new();
        assert_eq!(m.mean(), None);
        m.insert(1.0);
        m.insert(0.5);
        assert_eq!(m.count(), 2);
        assert!((m.mean().unwrap() - 0.75).abs() < 1e-12);
        m.shift(0.5, 0.9);
        assert!((m.mean().unwrap() - 0.95).abs() < 1e-12);
        m.remove(0.9);
        assert!((m.mean().unwrap() - 1.0).abs() < 1e-12);
        m.remove(1.0);
        assert_eq!(m.mean(), None);
        assert_eq!(m.sum(), 0.0, "emptied accumulator resets exactly");
    }

    #[test]
    #[should_panic(expected = "empty accumulator")]
    fn mean_acc_remove_from_empty_panics() {
        MeanAcc::new().remove(0.5);
    }

    #[test]
    fn mean_acc_survives_heavy_churn_near_recount() {
        // Simulated churn: values inserted, shifted and removed in a
        // deterministic pattern; the accumulator must stay within a
        // few ULPs of a recount.
        let mut m = MeanAcc::new();
        let mut live: Vec<f64> = Vec::new();
        let mut x = 0.123456789f64;
        for step in 0..100_000usize {
            x = (x * 997.0 + 0.618).fract();
            match step % 3 {
                0 => {
                    live.push(x);
                    m.insert(x);
                }
                1 if !live.is_empty() => {
                    let i = step % live.len();
                    let old = live[i];
                    live[i] = x;
                    m.shift(old, x);
                }
                _ if !live.is_empty() => {
                    let i = step % live.len();
                    let v = live.swap_remove(i);
                    m.remove(v);
                }
                _ => {}
            }
        }
        let recount: f64 = live.iter().sum();
        assert_eq!(m.count(), live.len());
        assert!(
            (m.sum() - recount).abs() <= 1e-9 * recount.abs().max(1.0),
            "sum {} vs recount {recount}",
            m.sum()
        );
    }
}

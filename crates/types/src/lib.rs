//! # replend-types
//!
//! Shared vocabulary for the `replend` workspace — the reproduction of
//! *"Reputation Lending for Virtual Communities"* (Garg, Montresor,
//! Battiti; DIT-05-086 / ICDE 2006).
//!
//! This crate deliberately has no dependencies beyond `serde` so that
//! every other crate in the workspace can agree on:
//!
//! * strongly-typed identifiers ([`PeerId`], [`NodeId`], [`RequestId`]),
//! * the clamped [`Reputation`] value type (invariant: always in `[0, 1]`),
//! * simulation time ([`SimTime`]),
//! * the behaviour model of the paper ([`Behavior`], [`IntroducerPolicy`]),
//! * the full simulation configuration mirroring **Table 1** of the paper
//!   ([`config::Table1`], [`config::LendingParams`]),
//! * deterministic, dependency-free hashing ([`hash`]),
//! * dense slot-arena primitives for allocation-free hot paths
//!   ([`arena`]: [`Handle`], [`SlotAllocator`], [`InlineList`]).
//!
//! ## Design notes
//!
//! The newtype discipline follows the database-engineering guides used
//! for this project: identifiers are opaque `u64` wrappers so that a
//! peer id can never be confused with a DHT node id or a simulation
//! timestamp, and reputation arithmetic is *saturating* so the
//! `[0, 1]` invariant can never be violated by protocol code.

pub mod accounting;
pub mod arena;
pub mod behavior;
pub mod config;
pub mod error;
pub mod hash;
pub mod id;
pub mod profile;
pub mod reputation;
pub mod time;

pub use accounting::{Feedback, KahanSum, MeanAcc, ReputationDelta};
pub use arena::{Handle, InlineList, SlotAlloc, SlotAllocator};
pub use behavior::{Behavior, IntroducerPolicy, PeerProfile};
pub use config::{LendingParams, SimParams, Table1, TopologyKind};
pub use error::{ConfigError, ProtocolError};
pub use id::{NodeId, PeerId, RequestId};
pub use profile::{HostProfile, HOST_PROFILE_VERSION, POOL_NEVER_WINS};
pub use reputation::Reputation;
pub use time::SimTime;

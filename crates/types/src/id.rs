//! Strongly-typed identifiers.
//!
//! All identifiers are opaque 64-bit values. [`PeerId`] names a
//! participant of the virtual community, [`NodeId`] is a position on
//! the DHT identifier ring (derived from a `PeerId` by hashing), and
//! [`RequestId`] uniquely names one introduction request so that score
//! managers can deduplicate the "multiple introduction" attack of §2.

use crate::hash::splitmix64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a peer in the virtual community.
///
/// Peer ids are dense (assigned sequentially by the community), which
/// lets simulation state use `Vec`-indexed storage, but the type is
/// opaque so call-sites cannot accidentally index with the wrong
/// number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerId(pub u64);

impl PeerId {
    /// Returns the raw numeric id.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the id as a `usize` index for dense storage.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Derives the DHT ring position for this peer.
    ///
    /// The mapping is a fixed bijective mix so that sequentially
    /// assigned peer ids land uniformly on the ring, as a real DHT
    /// would achieve by hashing a public key.
    #[inline]
    pub fn node_id(self) -> NodeId {
        NodeId(splitmix64(self.0 ^ 0x9e37_79b9_7f4a_7c15))
    }
}

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer#{}", self.0)
    }
}

impl From<u64> for PeerId {
    fn from(v: u64) -> Self {
        PeerId(v)
    }
}

/// A position on the 64-bit DHT identifier ring.
///
/// Arithmetic on the ring is modular; [`NodeId::distance_to`] gives the
/// clockwise distance used by Chord-style routing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Number of bits in the identifier space.
    pub const BITS: u32 = 64;

    /// Returns the raw ring coordinate.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Clockwise distance from `self` to `other` on the ring.
    #[inline]
    pub const fn distance_to(self, other: NodeId) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// The id exactly `2^k` clockwise of `self` — the k-th Chord finger
    /// target.
    #[inline]
    pub const fn finger_target(self, k: u32) -> NodeId {
        NodeId(self.0.wrapping_add(1u64 << k))
    }

    /// True if `self` lies in the half-open clockwise interval
    /// `(from, to]` on the ring.
    ///
    /// This is the interval test used by Chord's successor logic; it is
    /// well-defined even when the interval wraps around zero. When
    /// `from == to` the interval is the whole ring, so the test is
    /// always true.
    #[inline]
    pub fn in_interval(self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        from.distance_to(self) <= from.distance_to(to) && self != from
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{:016x}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{:016x}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

/// Unique identifier of a single introduction request.
///
/// §2 of the paper: *"The introduction request carries the identity of
/// both the introducer and the new peer to whom this amount is being
/// lent **as well as a unique id to prevent duplicate requests**."*
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl RequestId {
    /// Returns the raw request id.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Monotonic generator of [`RequestId`]s.
///
/// Kept deliberately simple (not thread-safe) — each simulated
/// community owns exactly one generator, and determinism matters more
/// than concurrency here.
#[derive(Debug, Default, Clone)]
pub struct RequestIdGen {
    next: u64,
}

impl RequestIdGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh, never-before-issued request id.
    pub fn next_id(&mut self) -> RequestId {
        let id = RequestId(self.next);
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_id_roundtrip() {
        let p = PeerId(42);
        assert_eq!(p.raw(), 42);
        assert_eq!(p.index(), 42);
        assert_eq!(PeerId::from(42), p);
        assert_eq!(format!("{p}"), "peer#42");
        assert_eq!(format!("{p:?}"), "peer#42");
    }

    #[test]
    fn node_ids_of_distinct_peers_differ() {
        let a = PeerId(0).node_id();
        let b = PeerId(1).node_id();
        assert_ne!(a, b);
    }

    #[test]
    fn node_id_mapping_is_deterministic() {
        assert_eq!(PeerId(7).node_id(), PeerId(7).node_id());
    }

    #[test]
    fn distance_wraps_around() {
        let a = NodeId(u64::MAX - 1);
        let b = NodeId(3);
        assert_eq!(a.distance_to(b), 5);
        assert_eq!(b.distance_to(a), u64::MAX - 4);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = NodeId(123);
        assert_eq!(a.distance_to(a), 0);
    }

    #[test]
    fn finger_target_powers() {
        let n = NodeId(0);
        assert_eq!(n.finger_target(0), NodeId(1));
        assert_eq!(n.finger_target(10), NodeId(1024));
        assert_eq!(n.finger_target(63), NodeId(1 << 63));
    }

    #[test]
    fn finger_target_wraps() {
        let n = NodeId(u64::MAX);
        assert_eq!(n.finger_target(0), NodeId(0));
    }

    #[test]
    fn interval_simple() {
        // (10, 20]: 15 and 20 are inside, 10 and 25 are not.
        let from = NodeId(10);
        let to = NodeId(20);
        assert!(NodeId(15).in_interval(from, to));
        assert!(NodeId(20).in_interval(from, to));
        assert!(!NodeId(10).in_interval(from, to));
        assert!(!NodeId(25).in_interval(from, to));
        assert!(!NodeId(5).in_interval(from, to));
    }

    #[test]
    fn interval_wrapping() {
        // (MAX-2, 5]: wraps through zero.
        let from = NodeId(u64::MAX - 2);
        let to = NodeId(5);
        assert!(NodeId(u64::MAX).in_interval(from, to));
        assert!(NodeId(0).in_interval(from, to));
        assert!(NodeId(5).in_interval(from, to));
        assert!(!NodeId(6).in_interval(from, to));
        assert!(!NodeId(u64::MAX - 2).in_interval(from, to));
    }

    #[test]
    fn interval_degenerate_full_ring() {
        let x = NodeId(7);
        assert!(NodeId(0).in_interval(x, x));
        assert!(NodeId(u64::MAX).in_interval(x, x));
    }

    #[test]
    fn request_id_gen_is_monotonic_and_unique() {
        let mut gen = RequestIdGen::new();
        let a = gen.next_id();
        let b = gen.next_id();
        let c = gen.next_id();
        assert_eq!(a, RequestId(0));
        assert_eq!(b, RequestId(1));
        assert_eq!(c, RequestId(2));
        assert!(a < b && b < c);
    }
}

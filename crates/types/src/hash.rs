//! Deterministic, dependency-free hashing primitives.
//!
//! The DHT layer needs (a) a bijective mixer to scatter sequential
//! peer ids uniformly over the 64-bit ring and (b) a salted hash to
//! derive the `numSM` score-manager replica keys of a peer. Both are
//! implemented here so that simulation results are bit-reproducible
//! across platforms and rustc versions (std's `DefaultHasher` makes no
//! such promise).

/// SplitMix64 finalizer — a bijective 64-bit mixer with excellent
/// avalanche behaviour (Steele, Lea, Flood; used as the seed mixer of
/// `java.util.SplittableRandom`).
#[inline]
pub const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice (64-bit variant).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Salted hash of a 64-bit key: `H(key, salt)`.
///
/// Used to derive the k-th score-manager replica key of a peer:
/// `replica_k(peer) = salted(peer.raw(), k)`. The construction hashes
/// the concatenated little-endian bytes with FNV-1a then finalises
/// with SplitMix64 to break FNV's weak low-bit diffusion.
#[inline]
pub fn salted(key: u64, salt: u64) -> u64 {
    let mut buf = [0u8; 16];
    buf[..8].copy_from_slice(&key.to_le_bytes());
    buf[8..].copy_from_slice(&salt.to_le_bytes());
    splitmix64(fnv1a(&buf))
}

/// Derives a stream of per-run RNG seeds from one base seed.
///
/// Run *i* of a repeated experiment gets `seed_for_run(base, i)`;
/// SplitMix64's bijectivity guarantees distinct seeds for distinct
/// runs of the same experiment.
#[inline]
pub const fn seed_for_run(base_seed: u64, run: u64) -> u64 {
    splitmix64(base_seed ^ splitmix64(run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_eq!(splitmix64(12345), splitmix64(12345));
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the SplittableRandom specification:
        // the first output of the sequence seeded with 0.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn splitmix_is_injective_on_sample() {
        let outs: HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn fnv_empty_is_offset_basis() {
        assert_eq!(fnv1a(&[]), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("a") from the reference implementation.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn salted_differs_by_salt() {
        let a = salted(42, 0);
        let b = salted(42, 1);
        let c = salted(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, salted(42, 0));
    }

    #[test]
    fn salted_replicas_are_spread() {
        // The 6 replica keys of one peer (Table 1: numSM = 6) should
        // not collide.
        let keys: HashSet<u64> = (0..6).map(|k| salted(7, k)).collect();
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn run_seeds_are_distinct() {
        let seeds: HashSet<u64> = (0..1000).map(|r| seed_for_run(0xdead_beef, r)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn run_seeds_differ_across_bases() {
        assert_ne!(seed_for_run(1, 0), seed_for_run(2, 0));
    }
}

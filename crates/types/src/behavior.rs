//! Peer behaviour model (§2 "Attack Model", §3 "Types of introducers").
//!
//! The paper's adversary is deliberately weaker than Byzantine: a peer
//! either behaves ([`Behavior::Cooperative`]) or freerides / serves
//! corrupted content ([`Behavior::Uncooperative`]). Orthogonally, when
//! acting as an *introducer* a peer is either
//! [`IntroducerPolicy::Naive`] (introduces anyone who asks) or
//! [`IntroducerPolicy::Selective`] (refuses uncooperative applicants
//! except for an error rate `err_sel` of misjudgements).

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a peer behaves in resource transactions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Behavior {
    /// Shares resources honestly; reports truthful feedback.
    Cooperative,
    /// Freerides or serves corrupted content; always reports `0`
    /// about its partners (§3: *"an uncooperative peer would always
    /// send a value of 0 for its partners in order to reduce the
    /// impact on its own reputation"*).
    Uncooperative,
}

impl Behavior {
    /// True for [`Behavior::Cooperative`].
    #[inline]
    pub const fn is_cooperative(self) -> bool {
        matches!(self, Behavior::Cooperative)
    }
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Behavior::Cooperative => write!(f, "cooperative"),
            Behavior::Uncooperative => write!(f, "uncooperative"),
        }
    }
}

/// How a peer decides whether to grant an introduction.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum IntroducerPolicy {
    /// *"Naive introducers are indiscriminate and will give an
    /// introduction to any new entrant that asks for one."* (§3)
    Naive,
    /// *"Selective introducers … only give introductions to peers that
    /// they believe will behave in a cooperative fashion. However, the
    /// selective introducers also make mistakes in their judgment and
    /// introduce a small percentage `err_sel` of the dishonest nodes
    /// that ask them for an introduction."* (§3)
    ///
    /// `error_rate` is that `err_sel` (Table 1 default: 10%).
    Selective {
        /// Probability of mistakenly introducing an uncooperative
        /// applicant. Must be in `[0, 1]`.
        error_rate: f64,
    },
}

impl IntroducerPolicy {
    /// The Table-1 default selective policy (`err_sel` = 10%).
    pub const fn default_selective() -> Self {
        IntroducerPolicy::Selective { error_rate: 0.10 }
    }

    /// Whether this policy would *want* to introduce an applicant of
    /// the given behaviour, given a uniform random draw `u ∈ [0, 1)`.
    ///
    /// This is a pure decision function — the reputation threshold
    /// check (`minIntro`) is enforced separately by the lending layer,
    /// because it depends on the introducer's current reputation and
    /// not on its policy.
    #[inline]
    pub fn would_introduce(self, applicant: Behavior, u: f64) -> bool {
        match self {
            IntroducerPolicy::Naive => true,
            IntroducerPolicy::Selective { error_rate } => match applicant {
                Behavior::Cooperative => true,
                Behavior::Uncooperative => u < error_rate,
            },
        }
    }

    /// True for the naive policy.
    #[inline]
    pub const fn is_naive(self) -> bool {
        matches!(self, IntroducerPolicy::Naive)
    }
}

impl fmt::Display for IntroducerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntroducerPolicy::Naive => write!(f, "naive"),
            IntroducerPolicy::Selective { error_rate } => {
                write!(f, "selective(err={:.0}%)", error_rate * 100.0)
            }
        }
    }
}

/// The full static profile of a peer: transaction behaviour plus
/// introduction policy.
///
/// §4 preamble fixes the joint distribution used by every experiment:
/// all *uncooperative* entrants are naive introducers; among
/// *cooperative* peers a fraction `f_naive` are naive and the rest
/// selective.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct PeerProfile {
    /// Transaction behaviour.
    pub behavior: Behavior,
    /// Introduction policy.
    pub policy: IntroducerPolicy,
}

impl PeerProfile {
    /// A cooperative peer with the given policy.
    pub const fn cooperative(policy: IntroducerPolicy) -> Self {
        PeerProfile {
            behavior: Behavior::Cooperative,
            policy,
        }
    }

    /// An uncooperative peer. Per §4, *"all new peers that are
    /// uncooperative are naive introducers"*.
    pub const fn uncooperative() -> Self {
        PeerProfile {
            behavior: Behavior::Uncooperative,
            policy: IntroducerPolicy::Naive,
        }
    }

    /// Draws a profile for a new entrant given the experiment's
    /// mixture parameters and two uniform random draws.
    ///
    /// * `u_behavior` decides cooperative vs. uncooperative against
    ///   `f_uncoop`;
    /// * `u_policy` decides naive vs. selective against `f_naive`
    ///   (only relevant for cooperative peers);
    /// * `err_sel` parameterises the selective policy.
    pub fn sample(
        f_uncoop: f64,
        f_naive: f64,
        err_sel: f64,
        u_behavior: f64,
        u_policy: f64,
    ) -> Self {
        if u_behavior < f_uncoop {
            PeerProfile::uncooperative()
        } else if u_policy < f_naive {
            PeerProfile::cooperative(IntroducerPolicy::Naive)
        } else {
            PeerProfile::cooperative(IntroducerPolicy::Selective {
                error_rate: err_sel,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_introduces_everyone() {
        let p = IntroducerPolicy::Naive;
        assert!(p.would_introduce(Behavior::Cooperative, 0.999));
        assert!(p.would_introduce(Behavior::Uncooperative, 0.999));
    }

    #[test]
    fn selective_always_introduces_cooperative() {
        let p = IntroducerPolicy::Selective { error_rate: 0.0 };
        assert!(p.would_introduce(Behavior::Cooperative, 0.999));
    }

    #[test]
    fn selective_rejects_uncooperative_outside_error_rate() {
        let p = IntroducerPolicy::default_selective();
        // u >= err_sel  →  correctly refused
        assert!(!p.would_introduce(Behavior::Uncooperative, 0.10));
        assert!(!p.would_introduce(Behavior::Uncooperative, 0.50));
        // u < err_sel  →  the 10% misjudgement of §3
        assert!(p.would_introduce(Behavior::Uncooperative, 0.05));
    }

    #[test]
    fn uncooperative_profile_is_naive() {
        // §4: "all new peers that are uncooperative are naive
        // introducers".
        let p = PeerProfile::uncooperative();
        assert_eq!(p.behavior, Behavior::Uncooperative);
        assert!(p.policy.is_naive());
    }

    #[test]
    fn sample_respects_mixture_boundaries() {
        // u_behavior below f_uncoop → uncooperative.
        let p = PeerProfile::sample(0.25, 0.3, 0.1, 0.2, 0.9);
        assert_eq!(p.behavior, Behavior::Uncooperative);

        // Above f_uncoop, u_policy below f_naive → cooperative naive.
        let p = PeerProfile::sample(0.25, 0.3, 0.1, 0.5, 0.1);
        assert_eq!(p.behavior, Behavior::Cooperative);
        assert!(p.policy.is_naive());

        // Above both → cooperative selective with the given err_sel.
        let p = PeerProfile::sample(0.25, 0.3, 0.1, 0.5, 0.9);
        assert_eq!(p.behavior, Behavior::Cooperative);
        assert_eq!(p.policy, IntroducerPolicy::Selective { error_rate: 0.1 });
    }

    #[test]
    fn display_strings() {
        assert_eq!(Behavior::Cooperative.to_string(), "cooperative");
        assert_eq!(
            IntroducerPolicy::default_selective().to_string(),
            "selective(err=10%)"
        );
        assert_eq!(IntroducerPolicy::Naive.to_string(), "naive");
    }
}

//! The clamped reputation value type.
//!
//! §2 of the paper: *"If the system is functioning as desired, the
//! reputation value of all cooperative peers should tend to 1 whereas
//! that of uncooperative peers should tend to zero."* Every reputation
//! in the system therefore lives in `[0, 1]`; [`Reputation`] makes the
//! invariant unrepresentable-to-violate by clamping at construction
//! and providing only saturating arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;

/// A reputation value, always within `[0.0, 1.0]`.
///
/// The paper's protocol constantly adds and subtracts reputation
/// (lending `introAmt`, paying rewards, audit penalties) with explicit
/// clamping rules — e.g. §3: *"update the reputation value of the
/// introducer **subject to the reputation not exceeding 1**"* and
/// *"reduce the stored reputation of the new entrant by introAmt
/// **subject to a minimum of 0**."* [`Reputation::saturating_add`] and
/// [`Reputation::saturating_sub`] encode exactly those rules.
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Reputation(f64);

impl Reputation {
    /// The minimum reputation — a brand-new, un-introduced entrant
    /// (§2 "Bootstrap": new entrants start at 0, "equivalent to the
    /// new entrant being uncooperative").
    pub const ZERO: Reputation = Reputation(0.0);

    /// The maximum reputation — a fully trusted peer.
    pub const ONE: Reputation = Reputation(1.0);

    /// Mid-scale reputation, used as the neutral prior in engines that
    /// count both positive and negative feedback.
    pub const HALF: Reputation = Reputation(0.5);

    /// Creates a reputation, clamping the argument into `[0, 1]`.
    ///
    /// `NaN` is mapped to `0.0` (the least trusted value) so that the
    /// ordering invariants of the type always hold.
    #[inline]
    pub fn new(value: f64) -> Self {
        if value.is_nan() {
            return Reputation(0.0);
        }
        Reputation(value.clamp(0.0, 1.0))
    }

    /// Returns the inner value (guaranteed within `[0, 1]`).
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Adds, saturating at `1.0`.
    #[inline]
    #[must_use]
    pub fn saturating_add(self, delta: f64) -> Self {
        Reputation::new(self.0 + delta)
    }

    /// Subtracts, saturating at `0.0`.
    #[inline]
    #[must_use]
    pub fn saturating_sub(self, delta: f64) -> Self {
        Reputation::new(self.0 - delta)
    }

    /// Linear interpolation toward `target` by weight `alpha ∈ [0,1]`.
    ///
    /// Used by the EWMA baseline engine.
    #[inline]
    #[must_use]
    pub fn lerp_toward(self, target: Reputation, alpha: f64) -> Self {
        let a = alpha.clamp(0.0, 1.0);
        Reputation::new(self.0 + a * (target.0 - self.0))
    }

    /// True if this reputation is at least `threshold`.
    #[inline]
    pub fn at_least(self, threshold: Reputation) -> bool {
        self.0 >= threshold.0
    }

    /// The mean of a slice of reputations; `None` when empty.
    pub fn mean(values: &[Reputation]) -> Option<Reputation> {
        if values.is_empty() {
            return None;
        }
        let sum: f64 = values.iter().map(|r| r.0).sum();
        Some(Reputation::new(sum / values.len() as f64))
    }
}

impl Default for Reputation {
    /// The default reputation is **zero** — the paper's bootstrap rule
    /// for entrants that have not been introduced.
    fn default() -> Self {
        Reputation::ZERO
    }
}

impl fmt::Debug for Reputation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rep({:.4})", self.0)
    }
}

impl fmt::Display for Reputation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<f64> for Reputation {
    fn from(v: f64) -> Self {
        Reputation::new(v)
    }
}

impl Sum<Reputation> for f64 {
    fn sum<I: Iterator<Item = Reputation>>(iter: I) -> f64 {
        iter.map(|r| r.0).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_clamps_out_of_range() {
        assert_eq!(Reputation::new(-0.5), Reputation::ZERO);
        assert_eq!(Reputation::new(1.5), Reputation::ONE);
        assert_eq!(Reputation::new(0.25).value(), 0.25);
    }

    #[test]
    fn nan_maps_to_zero() {
        assert_eq!(Reputation::new(f64::NAN), Reputation::ZERO);
    }

    #[test]
    fn default_is_zero_per_bootstrap_rule() {
        assert_eq!(Reputation::default(), Reputation::ZERO);
    }

    #[test]
    fn saturating_add_caps_at_one() {
        // §3: introducer repayment "subject to the reputation not
        // exceeding 1".
        let r = Reputation::new(0.95);
        assert_eq!(r.saturating_add(0.12), Reputation::ONE);
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        // §3: entrant penalty "subject to a minimum of 0".
        let r = Reputation::new(0.05);
        assert_eq!(r.saturating_sub(0.1), Reputation::ZERO);
    }

    #[test]
    fn add_negative_delta_subtracts() {
        let r = Reputation::new(0.5);
        assert!((r.saturating_add(-0.2).value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let r = Reputation::new(0.2);
        assert_eq!(r.lerp_toward(Reputation::ONE, 0.0), r);
        assert_eq!(r.lerp_toward(Reputation::ONE, 1.0), Reputation::ONE);
    }

    #[test]
    fn at_least_boundary() {
        assert!(Reputation::new(0.5).at_least(Reputation::HALF));
        assert!(!Reputation::new(0.4999).at_least(Reputation::HALF));
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(Reputation::mean(&[]), None);
    }

    #[test]
    fn mean_of_values() {
        let vals = [Reputation::new(0.0), Reputation::new(1.0)];
        assert_eq!(Reputation::mean(&vals), Some(Reputation::HALF));
    }

    proptest! {
        #[test]
        fn constructor_always_in_range(v in proptest::num::f64::ANY) {
            let r = Reputation::new(v);
            prop_assert!((0.0..=1.0).contains(&r.value()));
        }

        #[test]
        fn saturating_ops_preserve_invariant(
            base in 0.0f64..=1.0,
            delta in -10.0f64..=10.0,
        ) {
            let r = Reputation::new(base);
            let added = r.saturating_add(delta);
            let subbed = r.saturating_sub(delta);
            prop_assert!((0.0..=1.0).contains(&added.value()));
            prop_assert!((0.0..=1.0).contains(&subbed.value()));
        }

        #[test]
        fn add_then_sub_never_underflows_past_original(
            base in 0.0f64..=1.0,
            delta in 0.0f64..=1.0,
        ) {
            // Lending then repaying the same amount never leaves the
            // peer better off than the cap nor worse than zero.
            let r = Reputation::new(base);
            let roundtrip = r.saturating_sub(delta).saturating_add(delta);
            prop_assert!(roundtrip.value() <= 1.0 + 1e-12);
            prop_assert!(roundtrip.value() + 1e-12 >= base.min(1.0).min(roundtrip.value() + 1.0));
        }

        #[test]
        fn lerp_stays_in_range(
            base in 0.0f64..=1.0,
            target in 0.0f64..=1.0,
            alpha in 0.0f64..=1.0,
        ) {
            let r = Reputation::new(base).lerp_toward(Reputation::new(target), alpha);
            prop_assert!((0.0..=1.0).contains(&r.value()));
        }

        #[test]
        fn mean_is_bounded_by_extremes(vals in proptest::collection::vec(0.0f64..=1.0, 1..32)) {
            let reps: Vec<Reputation> = vals.iter().copied().map(Reputation::new).collect();
            let m = Reputation::mean(&reps).unwrap().value();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-12 && m <= hi + 1e-12);
        }
    }
}

//! # replend-wire
//!
//! The workspace's deterministic binary wire format, built on the
//! serde data model: the serialization surface that lets the
//! multi-community cluster run as **shared-nothing worker processes**
//! exchanging encoded summaries instead of sharing memory.
//!
//! ## Encoding
//!
//! Non-self-describing, positional, byte-oriented (`bincode`-style):
//!
//! * fixed-width integers are little-endian (`usize` travels as
//!   `u64`, `isize` as `i64`);
//! * floats are the IEEE-754 bit pattern, little-endian — **bit
//!   exact**, so a reputation mean decodes to the same `f64` bits it
//!   was encoded from (the cluster's byte-identity guarantee depends
//!   on this);
//! * `bool` is one byte (`0`/`1`; anything else is a decode error);
//! * `Option` is a one-byte tag (`0` = `None`, `1` = `Some`) followed
//!   by the value;
//! * sequences and strings carry a `u64` element/byte count followed
//!   by the elements;
//! * structs, tuples and tuple structs encode their fields in
//!   declaration order with no tags or names;
//! * enum variants encode the `u32` variant index, then the content.
//!
//! There is exactly one encoding for a given value, no alignment, no
//! padding and no platform dependence, so `encode(x)` is a stable
//! fingerprint of `x`: equal values encode to equal bytes on every
//! host, which is what the cross-process determinism tests pin.
//!
//! ## Versioning
//!
//! Everything that crosses a process boundary travels inside a
//! [`SummaryEnvelope`] `{ version, seed, payload }`. The version is
//! this crate's [`PROTOCOL_VERSION`]; [`SummaryEnvelope::open`]
//! rejects a mismatch with the typed
//! [`WireError::VersionMismatch`] *before* touching the payload.
//! Policy: **any** change to the encoding of a type that crosses the
//! boundary — field added/removed/reordered, width changed, variant
//! added anywhere but the end — must bump [`PROTOCOL_VERSION`].
//! There is no negotiation: workers are spawned by a coordinator of
//! the same build in the intended deployment, so a mismatch means a
//! stale binary and the right response is to fail loudly.
//!
//! ## Framing
//!
//! Stream transports (the worker's stdio pipes) delimit messages
//! with [`write_frame`]/[`read_frame`]: a `u32` little-endian byte
//! length followed by the encoded bytes. `read_frame` distinguishes
//! a clean end-of-stream (`Ok(None)`) from a truncated frame (an
//! error).
//!
//! ## Journalling
//!
//! [`JournalWriter`]/[`JournalReader`] reuse the same envelope +
//! framing as an **append-only write-ahead log**: every record is a
//! framed [`SummaryEnvelope`] (version-gated, seed-tagged), appended
//! and flushed before the state change it describes is applied.
//! A crash mid-append leaves a *torn tail* — a truncated final frame —
//! which the reader reports as a clean end of the intact prefix
//! ([`JournalReader::torn_tail`]) together with the byte offset of
//! that prefix ([`JournalReader::consumed`]), so a restarting service
//! can truncate the file and resume appending.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, Read, Write};

/// Version of the worker wire protocol. Bump on **any** encoding
/// change of a boundary-crossing type (see the crate docs for the
/// policy).
///
/// History: v1 = the original job/report protocol; v2 = the report's
/// sampled series carries `Option<f64>` per sample (empty cohorts are
/// no longer conflated with a true zero mean) and the serve layer's
/// journal records joined the boundary-crossing set.
pub const PROTOCOL_VERSION: u32 = 2;

/// The file-magic prefix of a host-calibration profile written by
/// `replend calibrate` (see [`encode_profile`]): distinguishes a
/// profile from arbitrary wire bytes before any decoding happens, so
/// pointing `--profile` at the wrong file fails with a typed error
/// instead of a garbage decode.
pub const PROFILE_MAGIC: [u8; 4] = *b"RLPF";

/// The file-magic prefix of an engine checkpoint written by the serve
/// layer (see [`encode_checkpoint`]): distinguishes a checkpoint from
/// arbitrary wire bytes — and from a profile — before any decoding
/// happens, so a corrupt or misrouted file fails with a typed error
/// instead of a garbage decode.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"RLCK";

/// Typed encode/decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was fully decoded.
    Eof,
    /// The input did not start with the expected file magic (e.g.
    /// `--profile` pointed at something that is not a profile).
    BadMagic,
    /// Decoding finished with this many input bytes left over.
    TrailingBytes(usize),
    /// A `bool` byte was neither 0 nor 1.
    InvalidBool(u8),
    /// An `Option` tag byte was neither 0 nor 1.
    InvalidOptionTag(u8),
    /// A string's bytes were not valid UTF-8.
    InvalidUtf8,
    /// A length prefix exceeded the platform's `usize`.
    LengthOverflow(u64),
    /// The envelope's protocol version does not match this build.
    VersionMismatch {
        /// The version this build speaks ([`PROTOCOL_VERSION`]).
        expected: u32,
        /// The version found in the envelope.
        found: u32,
    },
    /// Any other serde-reported failure (unknown enum variant, …).
    Message(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof => write!(f, "unexpected end of input"),
            WireError::BadMagic => write!(f, "input does not start with the expected file magic"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the value"),
            WireError::InvalidBool(b) => write!(f, "invalid bool byte {b:#04x}"),
            WireError::InvalidOptionTag(b) => write!(f, "invalid option tag {b:#04x}"),
            WireError::InvalidUtf8 => write!(f, "string bytes are not valid UTF-8"),
            WireError::LengthOverflow(n) => write!(f, "length prefix {n} exceeds usize"),
            WireError::VersionMismatch { expected, found } => write!(
                f,
                "wire protocol version mismatch: this build speaks v{expected}, peer sent v{found}"
            ),
            WireError::Message(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl serde::ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

impl serde::de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

/// Encodes a value to its canonical byte string.
pub fn to_bytes<T: ?Sized + Serialize>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut encoder = Encoder { out: Vec::new() };
    value.serialize(&mut encoder)?;
    Ok(encoder.out)
}

/// Decodes a value from `bytes`, requiring every byte to be consumed.
pub fn from_bytes<'de, T: Deserialize<'de>>(bytes: &'de [u8]) -> Result<T, WireError> {
    let mut decoder = Decoder {
        input: bytes,
        pos: 0,
    };
    let value = T::deserialize(&mut decoder)?;
    let rest = bytes.len() - decoder.pos;
    if rest != 0 {
        return Err(WireError::TrailingBytes(rest));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

/// The streaming encoder behind [`to_bytes`].
struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    #[inline]
    fn put(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }
}

macro_rules! encode_le {
    ($($method:ident: $ty:ty),* $(,)?) => {$(
        fn $method(self, v: $ty) -> Result<(), WireError> {
            self.put(&v.to_le_bytes());
            Ok(())
        }
    )*};
}

impl serde::Serializer for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    encode_le! {
        serialize_i8: i8, serialize_i16: i16, serialize_i32: i32, serialize_i64: i64,
        serialize_u8: u8, serialize_u16: u16, serialize_u32: u32, serialize_u64: u64,
    }

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.put(&[v as u8]);
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.put(&v.to_bits().to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        self.put(&v.to_bits().to_le_bytes());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.put(&(v.len() as u64).to_le_bytes());
        self.put(v.as_bytes());
        Ok(())
    }

    fn serialize_none(self) -> Result<(), WireError> {
        self.put(&[0]);
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), WireError> {
        self.put(&[1]);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), WireError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), WireError> {
        self.put(&variant_index.to_le_bytes());
        Ok(())
    }

    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.put(&variant_index.to_le_bytes());
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self, WireError> {
        let len = len.ok_or_else(|| {
            <WireError as serde::ser::Error>::custom("sequences must know their length")
        })?;
        self.put(&(len as u64).to_le_bytes());
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }

    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.put(&variant_index.to_le_bytes());
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, WireError> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, WireError> {
        self.put(&variant_index.to_le_bytes());
        Ok(self)
    }
}

impl serde::ser::SerializeSeq for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl serde::ser::SerializeTuple for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl serde::ser::SerializeTupleStruct for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl serde::ser::SerializeTupleVariant for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl serde::ser::SerializeStruct for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl serde::ser::SerializeStructVariant for &mut Encoder {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

/// The streaming decoder behind [`from_bytes`].
struct Decoder<'de> {
    input: &'de [u8],
    pos: usize,
}

impl<'de> Decoder<'de> {
    #[inline]
    fn take(&mut self, n: usize) -> Result<&'de [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Eof)?;
        if end > self.input.len() {
            return Err(WireError::Eof);
        }
        let bytes = &self.input[self.pos..end];
        self.pos = end;
        Ok(bytes)
    }

    #[inline]
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        Ok(self.take(N)?.try_into().expect("take returned N bytes"))
    }

    fn take_len(&mut self) -> Result<usize, WireError> {
        let raw = u64::from_le_bytes(self.take_array::<8>()?);
        usize::try_from(raw).map_err(|_| WireError::LengthOverflow(raw))
    }
}

macro_rules! decode_le {
    ($($method:ident: $ty:ty => $visit:ident / $n:literal),* $(,)?) => {$(
        fn $method<V: serde::de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            let v = <$ty>::from_le_bytes(self.take_array::<$n>()?);
            visitor.$visit(v)
        }
    )*};
}

impl<'de> serde::Deserializer<'de> for &mut Decoder<'de> {
    type Error = WireError;

    decode_le! {
        deserialize_i8: i8 => visit_i8 / 1,
        deserialize_i16: i16 => visit_i16 / 2,
        deserialize_i32: i32 => visit_i32 / 4,
        deserialize_i64: i64 => visit_i64 / 8,
        deserialize_u8: u8 => visit_u8 / 1,
        deserialize_u16: u16 => visit_u16 / 2,
        deserialize_u32: u32 => visit_u32 / 4,
        deserialize_u64: u64 => visit_u64 / 8,
    }

    fn deserialize_bool<V: serde::de::Visitor<'de>>(
        self,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        match self.take_array::<1>()?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            other => Err(WireError::InvalidBool(other)),
        }
    }

    fn deserialize_f32<V: serde::de::Visitor<'de>>(
        self,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        let bits = u32::from_le_bytes(self.take_array::<4>()?);
        visitor.visit_f32(f32::from_bits(bits))
    }

    fn deserialize_f64<V: serde::de::Visitor<'de>>(
        self,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        let bits = u64::from_le_bytes(self.take_array::<8>()?);
        visitor.visit_f64(f64::from_bits(bits))
    }

    fn deserialize_str<V: serde::de::Visitor<'de>>(
        self,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)?;
        visitor.visit_str(s)
    }

    fn deserialize_string<V: serde::de::Visitor<'de>>(
        self,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_option<V: serde::de::Visitor<'de>>(
        self,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        match self.take_array::<1>()?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            other => Err(WireError::InvalidOptionTag(other)),
        }
    }

    fn deserialize_unit<V: serde::de::Visitor<'de>>(
        self,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: serde::de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: serde::de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: serde::de::Visitor<'de>>(
        self,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        let len = self.take_len()?;
        visitor.visit_seq(CountedAccess {
            decoder: self,
            left: len,
        })
    }

    fn deserialize_tuple<V: serde::de::Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(CountedAccess {
            decoder: self,
            left: len,
        })
    }

    fn deserialize_tuple_struct<V: serde::de::Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(CountedAccess {
            decoder: self,
            left: len,
        })
    }

    fn deserialize_struct<V: serde::de::Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(CountedAccess {
            decoder: self,
            left: fields.len(),
        })
    }

    fn deserialize_enum<V: serde::de::Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_enum(VariantDecoder { decoder: self })
    }
}

/// Sequence access bounded by an element count (explicit for `Vec`s,
/// structural for structs and tuples).
struct CountedAccess<'a, 'de> {
    decoder: &'a mut Decoder<'de>,
    left: usize,
}

impl<'de> serde::de::SeqAccess<'de> for CountedAccess<'_, 'de> {
    type Error = WireError;
    fn next_element_seed<T: serde::de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.decoder).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

/// Enum access: the `u32` variant index, then the content.
struct VariantDecoder<'a, 'de> {
    decoder: &'a mut Decoder<'de>,
}

impl<'de> serde::de::EnumAccess<'de> for VariantDecoder<'_, 'de> {
    type Error = WireError;
    type Variant = Self;
    fn variant_seed<V: serde::de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), WireError> {
        let index = seed.deserialize(&mut *self.decoder)?;
        Ok((index, self))
    }
}

impl<'de> serde::de::VariantAccess<'de> for VariantDecoder<'_, 'de> {
    type Error = WireError;
    fn unit_variant(self) -> Result<(), WireError> {
        Ok(())
    }
    fn newtype_variant_seed<T: serde::de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, WireError> {
        seed.deserialize(self.decoder)
    }
    fn tuple_variant<V: serde::de::Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(CountedAccess {
            decoder: self.decoder,
            left: len,
        })
    }
    fn struct_variant<V: serde::de::Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(CountedAccess {
            decoder: self.decoder,
            left: fields.len(),
        })
    }
}

// ---------------------------------------------------------------------------
// Versioned envelope
// ---------------------------------------------------------------------------

/// The versioned wrapper every cross-process message travels in.
///
/// `seed` identifies the run the payload belongs to (the cluster's
/// base seed), letting a coordinator reject summaries from a stale
/// or misrouted worker; `version` gates decoding entirely — see the
/// crate docs for the bump policy.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SummaryEnvelope {
    /// Protocol version of the sender ([`PROTOCOL_VERSION`]).
    pub version: u32,
    /// Base seed of the run this payload belongs to.
    pub seed: u64,
    /// The encoded message ([`to_bytes`] of the payload type).
    pub payload: Vec<u8>,
}

impl SummaryEnvelope {
    /// Wraps an encodable payload under the current
    /// [`PROTOCOL_VERSION`].
    pub fn wrap<T: ?Sized + Serialize>(seed: u64, payload: &T) -> Result<Self, WireError> {
        Ok(SummaryEnvelope {
            version: PROTOCOL_VERSION,
            seed,
            payload: to_bytes(payload)?,
        })
    }

    /// Decodes an envelope from bytes and checks its version against
    /// this build, **before** any payload bytes are interpreted.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let envelope: SummaryEnvelope = from_bytes(bytes)?;
        if envelope.version != PROTOCOL_VERSION {
            return Err(WireError::VersionMismatch {
                expected: PROTOCOL_VERSION,
                found: envelope.version,
            });
        }
        Ok(envelope)
    }

    /// Encodes the envelope itself to bytes.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        to_bytes(self)
    }

    /// Decodes the payload (the version was already checked by
    /// [`SummaryEnvelope::decode`]; `open` re-checks for envelopes
    /// built by hand).
    pub fn open<T: serde::de::DeserializeOwned>(&self) -> Result<T, WireError> {
        if self.version != PROTOCOL_VERSION {
            return Err(WireError::VersionMismatch {
                expected: PROTOCOL_VERSION,
                found: self.version,
            });
        }
        from_bytes(&self.payload)
    }
}

// ---------------------------------------------------------------------------
// Host-profile files
// ---------------------------------------------------------------------------

/// Encodes a host-calibration profile for writing to disk:
/// [`PROFILE_MAGIC`] followed by a version-gated [`SummaryEnvelope`]
/// tagged with the calibration seed. Generic over the payload type so
/// this crate keeps its serde-only dependency set (the concrete
/// `HostProfile` lives in `replend-types`).
pub fn encode_profile<T: ?Sized + Serialize>(seed: u64, profile: &T) -> Result<Vec<u8>, WireError> {
    let envelope = SummaryEnvelope::wrap(seed, profile)?.encode()?;
    let mut out = Vec::with_capacity(PROFILE_MAGIC.len() + envelope.len());
    out.extend_from_slice(&PROFILE_MAGIC);
    out.extend_from_slice(&envelope);
    Ok(out)
}

/// Decodes a profile file produced by [`encode_profile`], checking
/// the magic first and the protocol version second, before any
/// payload bytes are interpreted. Returns the calibration seed with
/// the decoded profile.
pub fn decode_profile<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<(u64, T), WireError> {
    let rest = bytes
        .strip_prefix(&PROFILE_MAGIC[..])
        .ok_or(WireError::BadMagic)?;
    let envelope = SummaryEnvelope::decode(rest)?;
    Ok((envelope.seed, envelope.open()?))
}

// ---------------------------------------------------------------------------
// Checkpoint files
// ---------------------------------------------------------------------------

/// Encodes an engine checkpoint for writing to disk:
/// [`CHECKPOINT_MAGIC`] followed by a version-gated
/// [`SummaryEnvelope`] tagged with the service seed. Generic over the
/// payload type for the same reason as [`encode_profile`]: the
/// concrete checkpoint state lives in the serve layer, this crate
/// keeps its serde-only dependency set.
pub fn encode_checkpoint<T: ?Sized + Serialize>(
    seed: u64,
    state: &T,
) -> Result<Vec<u8>, WireError> {
    let envelope = SummaryEnvelope::wrap(seed, state)?.encode()?;
    let mut out = Vec::with_capacity(CHECKPOINT_MAGIC.len() + envelope.len());
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&envelope);
    Ok(out)
}

/// Decodes a checkpoint file produced by [`encode_checkpoint`],
/// checking the magic first and the protocol version second, before
/// any payload bytes are interpreted. Returns the service seed with
/// the decoded state. A torn file (crash mid-write before the atomic
/// rename) surfaces as [`WireError::Eof`] from the envelope decode —
/// never as half-interpreted state.
pub fn decode_checkpoint<T: serde::de::DeserializeOwned>(
    bytes: &[u8],
) -> Result<(u64, T), WireError> {
    let rest = bytes
        .strip_prefix(&CHECKPOINT_MAGIC[..])
        .ok_or(WireError::BadMagic)?;
    let envelope = SummaryEnvelope::decode(rest)?;
    Ok((envelope.seed, envelope.open()?))
}

// ---------------------------------------------------------------------------
// Stream framing
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame (`u32` LE byte count + bytes).
pub fn write_frame<W: Write>(writer: &mut W, bytes: &[u8]) -> io::Result<()> {
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds 4 GiB"))?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(bytes)?;
    writer.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean
/// end-of-stream (EOF exactly at a frame boundary); a mid-frame EOF
/// is an `UnexpectedEof` error.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match reader.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Write-ahead journal framing
// ---------------------------------------------------------------------------

/// A journal failure: the transport, the encoding, or a record that
/// belongs to a different log.
#[derive(Debug)]
pub enum JournalError {
    /// Reading or writing the underlying stream failed.
    Io(io::Error),
    /// A record failed to encode/decode — including the version gate
    /// ([`WireError::VersionMismatch`]: the log was written by a
    /// different protocol build and must not be half-interpreted).
    Wire(WireError),
    /// An intact record carried the wrong seed: the file is a journal,
    /// but not *this* service's journal.
    SeedMismatch {
        /// The seed the reader was opened with.
        expected: u64,
        /// The seed found in the record's envelope.
        found: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Wire(e) => write!(f, "journal encoding error: {e}"),
            JournalError::SeedMismatch { expected, found } => write!(
                f,
                "journal seed mismatch: this service uses seed {expected}, record carries {found}"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<WireError> for JournalError {
    fn from(e: WireError) -> Self {
        JournalError::Wire(e)
    }
}

/// When a [`JournalWriter`] pushes buffered record frames to the
/// underlying stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Flush after every appended record — the strict write-ahead
    /// contract: when `append` returns `Ok`, the record is in the
    /// OS's hands before the mutation is applied.
    Always,
    /// Group commit: buffer encoded frames in memory and flush once
    /// every `N` appends. Relaxes durability — up to `N - 1` applied
    /// records can be lost on a crash — but never ordering: the
    /// stream carries the exact same bytes in the exact same order,
    /// so replay state is unchanged and a torn tail can only start at
    /// a flushed-batch boundary. `Batch(0)` and `Batch(1)` behave
    /// like [`SyncPolicy::Always`].
    Batch(usize),
}

impl SyncPolicy {
    /// Appends between forced flushes (≥ 1).
    fn every(self) -> usize {
        match self {
            SyncPolicy::Always => 1,
            SyncPolicy::Batch(n) => n.max(1),
        }
    }
}

/// Appends records to a write-ahead journal: each record is one
/// framed, version-gated [`SummaryEnvelope`] tagged with the log's
/// seed. Under [`SyncPolicy::Always`] (the default), every
/// [`JournalWriter::append`] flushes before returning; under
/// [`SyncPolicy::Batch`], frames accumulate in an in-memory tail and
/// hit the stream in groups — byte-identical content either way.
/// Dropping the writer flushes the tail best-effort; call
/// [`JournalWriter::sync`] to observe the result.
#[derive(Debug)]
pub struct JournalWriter<W: Write> {
    inner: W,
    seed: u64,
    /// Encoded-but-unflushed frames, in append order.
    tail: Vec<u8>,
    /// Records currently buffered in `tail`.
    pending: usize,
    every: usize,
}

impl<W: Write> JournalWriter<W> {
    /// A writer appending records tagged with `seed` to `inner`
    /// (typically a file opened in append mode), flushing every
    /// record ([`SyncPolicy::Always`]).
    pub fn new(inner: W, seed: u64) -> Self {
        Self::with_policy(inner, seed, SyncPolicy::Always)
    }

    /// A writer with an explicit [`SyncPolicy`].
    pub fn with_policy(inner: W, seed: u64, policy: SyncPolicy) -> Self {
        JournalWriter {
            inner,
            seed,
            tail: Vec::new(),
            pending: 0,
            every: policy.every(),
        }
    }

    /// Appends one record; flushes when the policy's batch is full.
    pub fn append<T: ?Sized + Serialize>(&mut self, record: &T) -> Result<(), JournalError> {
        let envelope = SummaryEnvelope::wrap(self.seed, record)?;
        let bytes = envelope.encode()?;
        let len = u32::try_from(bytes.len()).map_err(|_| {
            JournalError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "frame exceeds 4 GiB",
            ))
        })?;
        self.tail.extend_from_slice(&len.to_le_bytes());
        self.tail.extend_from_slice(&bytes);
        self.pending += 1;
        if self.pending >= self.every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces the buffered tail onto the stream and flushes. A no-op
    /// under [`SyncPolicy::Always`] outside `append` (the tail is
    /// always empty there).
    pub fn sync(&mut self) -> Result<(), JournalError> {
        if !self.tail.is_empty() {
            self.inner.write_all(&self.tail)?;
            self.tail.clear();
        }
        self.pending = 0;
        self.inner.flush()?;
        Ok(())
    }

    /// Records buffered in memory but not yet flushed to the stream.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Retags subsequently appended records with `seed`. Used by
    /// journal compaction: after a checkpoint is durable the log is
    /// truncated and restarted under a new generation-salted seed, so
    /// a stale pre-truncation journal (crash between checkpoint
    /// rename and truncate) is rejected by the seed gate on replay
    /// instead of being replayed on top of the checkpoint. Frames
    /// already buffered in the tail keep the seed they were encoded
    /// with — callers must [`JournalWriter::sync`] first.
    pub fn set_seed(&mut self, seed: u64) {
        debug_assert_eq!(self.pending, 0, "re-seeding with buffered records");
        self.seed = seed;
    }

    /// The underlying stream, for callers that need to sync or close.
    /// Call [`JournalWriter::sync`] first if buffered records must
    /// reach the stream before you touch it.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: Write> Drop for JournalWriter<W> {
    fn drop(&mut self) {
        // Best-effort: a clean shutdown should not lose the buffered
        // tail just because the policy batched. Errors are invisible
        // here — callers that care must `sync()` explicitly.
        let _ = self.sync();
    }
}

/// Reads a write-ahead journal back, record by record, verifying the
/// protocol version and seed of every envelope.
///
/// A truncated final frame (the signature of a crash mid-append) ends
/// the iteration cleanly instead of erroring: [`JournalReader::next`]
/// returns `Ok(None)`, [`JournalReader::torn_tail`] reports that the
/// tail was torn, and [`JournalReader::consumed`] is the byte length
/// of the intact prefix — truncate the file there before appending.
/// A *full-length* frame that fails to decode is corruption, not a
/// torn tail, and stays a hard error.
#[derive(Debug)]
pub struct JournalReader<R: Read> {
    inner: R,
    seed: u64,
    consumed: u64,
    records: u64,
    torn: bool,
}

impl<R: Read> JournalReader<R> {
    /// A reader over `inner` expecting records tagged with `seed`.
    pub fn new(inner: R, seed: u64) -> Self {
        JournalReader {
            inner,
            seed,
            consumed: 0,
            records: 0,
            torn: false,
        }
    }

    /// The next intact record, or `Ok(None)` at the end of the intact
    /// prefix (clean EOF *or* torn tail — distinguish via
    /// [`JournalReader::torn_tail`]).
    ///
    /// Not `Iterator::next`: the record type is chosen per call and
    /// the fallible `Result<Option<_>>` shape is the point.
    #[allow(clippy::should_implement_trait)]
    pub fn next<T: serde::de::DeserializeOwned>(&mut self) -> Result<Option<T>, JournalError> {
        if self.torn {
            return Ok(None);
        }
        let frame = match read_frame(&mut self.inner) {
            Ok(None) => return Ok(None),
            Ok(Some(frame)) => frame,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                self.torn = true;
                return Ok(None);
            }
            Err(e) => return Err(JournalError::Io(e)),
        };
        let envelope = SummaryEnvelope::decode(&frame)?;
        if envelope.seed != self.seed {
            return Err(JournalError::SeedMismatch {
                expected: self.seed,
                found: envelope.seed,
            });
        }
        let record = envelope.open()?;
        self.consumed += 4 + frame.len() as u64;
        self.records += 1;
        Ok(Some(record))
    }

    /// Bytes of intact records read so far (frame headers included) —
    /// the length to truncate a torn journal to.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Intact records decoded so far — alongside
    /// [`JournalReader::consumed`], lets a replaying service report
    /// record counts and byte offsets without counting externally.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// True when iteration stopped at a truncated final frame rather
    /// than a clean end-of-stream.
    pub fn torn_tail(&self) -> bool {
        self.torn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::de::DeserializeOwned;

    fn round_trip<T>(value: &T) -> T
    where
        T: Serialize + DeserializeOwned,
    {
        from_bytes(&to_bytes(value).expect("encode")).expect("decode")
    }

    #[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
    struct Record {
        id: u64,
        score: f64,
        tags: Vec<u32>,
        label: Option<String>,
        flag: bool,
    }

    #[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Unit,
        New(u64),
        Pair(u32, f64),
        Named { x: f64, y: Option<u64> },
    }

    #[test]
    fn primitives_round_trip_bit_exact() {
        assert!(round_trip(&true));
        assert_eq!(round_trip(&0xAB_u8), 0xAB);
        assert_eq!(round_trip(&-12345_i64), -12345);
        assert_eq!(round_trip(&u64::MAX), u64::MAX);
        assert_eq!(round_trip(&usize::MAX), usize::MAX);
        for f in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            assert_eq!(round_trip(&f).to_bits(), f.to_bits(), "{f}");
        }
        assert_eq!(round_trip(&"héllo".to_string()), "héllo");
    }

    #[test]
    fn known_byte_layout() {
        // u64 is 8 bytes little-endian.
        assert_eq!(to_bytes(&1u64).unwrap(), vec![1, 0, 0, 0, 0, 0, 0, 0]);
        // Vec carries a u64 length prefix.
        assert_eq!(
            to_bytes(&vec![1u8, 2]).unwrap(),
            vec![2, 0, 0, 0, 0, 0, 0, 0, 1, 2]
        );
        // Option is a single tag byte.
        assert_eq!(to_bytes(&Option::<u8>::None).unwrap(), vec![0]);
        assert_eq!(to_bytes(&Some(7u8)).unwrap(), vec![1, 7]);
        // Unit enum variants are their u32 index.
        assert_eq!(to_bytes(&Shape::Unit).unwrap(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn structs_and_enums_round_trip() {
        let r = Record {
            id: 42,
            score: -0.125,
            tags: vec![1, 2, 3],
            label: Some("x".into()),
            flag: false,
        };
        assert_eq!(round_trip(&r), r);
        for s in [
            Shape::Unit,
            Shape::New(9),
            Shape::Pair(3, 0.5),
            Shape::Named { x: 1.0, y: None },
            Shape::Named {
                x: -1.0,
                y: Some(8),
            },
        ] {
            assert_eq!(round_trip(&s), s);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let r = Record {
            id: 7,
            score: 0.75,
            tags: vec![9, 9, 9],
            label: None,
            flag: true,
        };
        assert_eq!(to_bytes(&r).unwrap(), to_bytes(&r.clone()).unwrap());
    }

    #[test]
    fn decode_errors_are_typed() {
        assert_eq!(from_bytes::<u64>(&[1, 2, 3]), Err(WireError::Eof));
        assert_eq!(from_bytes::<u8>(&[1, 2]), Err(WireError::TrailingBytes(1)));
        assert_eq!(from_bytes::<bool>(&[2]), Err(WireError::InvalidBool(2)));
        assert_eq!(
            from_bytes::<Option<u8>>(&[9, 0]),
            Err(WireError::InvalidOptionTag(9))
        );
        // Variant index beyond the enum's variants.
        let err = from_bytes::<Shape>(&99u32.to_le_bytes()).unwrap_err();
        assert!(matches!(err, WireError::Message(_)), "{err:?}");
    }

    #[test]
    fn envelope_round_trips_and_rejects_bumped_version() {
        let payload = Record {
            id: 1,
            score: 0.5,
            tags: vec![],
            label: None,
            flag: true,
        };
        let envelope = SummaryEnvelope::wrap(77, &payload).unwrap();
        assert_eq!(envelope.version, PROTOCOL_VERSION);
        let bytes = envelope.encode().unwrap();
        let decoded = SummaryEnvelope::decode(&bytes).unwrap();
        assert_eq!(decoded.seed, 77);
        assert_eq!(decoded.open::<Record>().unwrap(), payload);

        // A peer speaking a newer protocol is rejected before its
        // payload is interpreted.
        let mut stale = envelope.clone();
        stale.version = PROTOCOL_VERSION + 1;
        let bytes = stale.encode().unwrap();
        assert_eq!(
            SummaryEnvelope::decode(&bytes),
            Err(WireError::VersionMismatch {
                expected: PROTOCOL_VERSION,
                found: PROTOCOL_VERSION + 1,
            })
        );
        assert!(matches!(
            stale.open::<Record>(),
            Err(WireError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn profile_files_round_trip_and_gate_magic_and_version() {
        let payload = Record {
            id: 11,
            score: 0.25,
            tags: vec![4],
            label: Some("host".into()),
            flag: false,
        };
        let bytes = encode_profile(5, &payload).unwrap();
        assert_eq!(&bytes[..4], b"RLPF");
        let (seed, decoded) = decode_profile::<Record>(&bytes).unwrap();
        assert_eq!(seed, 5);
        assert_eq!(decoded, payload);

        // Not a profile file at all.
        assert_eq!(
            decode_profile::<Record>(b"not a profile").unwrap_err(),
            WireError::BadMagic
        );
        assert_eq!(
            decode_profile::<Record>(b"RL").unwrap_err(),
            WireError::BadMagic
        );

        // Right magic, wrong protocol version: rejected before the
        // payload decodes.
        let mut stale = SummaryEnvelope::wrap(5, &payload).unwrap();
        stale.version += 1;
        let mut file = PROFILE_MAGIC.to_vec();
        file.extend_from_slice(&stale.encode().unwrap());
        assert!(matches!(
            decode_profile::<Record>(&file),
            Err(WireError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn checkpoint_files_round_trip_and_gate_magic_and_version() {
        let payload = Record {
            id: 3,
            score: 0.875,
            tags: vec![1, 2],
            label: None,
            flag: true,
        };
        let bytes = encode_checkpoint(42, &payload).unwrap();
        assert_eq!(&bytes[..4], b"RLCK");
        let (seed, decoded) = decode_checkpoint::<Record>(&bytes).unwrap();
        assert_eq!(seed, 42);
        assert_eq!(decoded, payload);

        // A profile is not a checkpoint (and vice versa): the two
        // magics keep the file kinds from being confused.
        assert_eq!(
            decode_checkpoint::<Record>(&encode_profile(42, &payload).unwrap()).unwrap_err(),
            WireError::BadMagic
        );
        assert_eq!(
            decode_checkpoint::<Record>(b"RL").unwrap_err(),
            WireError::BadMagic
        );

        // A torn file — crash mid-write — fails the envelope decode
        // with a typed error instead of yielding partial state.
        for cut in [4usize, 6, bytes.len() - 1] {
            assert!(
                matches!(
                    decode_checkpoint::<Record>(&bytes[..cut]),
                    Err(WireError::Eof) | Err(WireError::TrailingBytes(_))
                ),
                "cut at {cut}"
            );
        }

        // Right magic, wrong protocol version: rejected before the
        // payload decodes.
        let mut stale = SummaryEnvelope::wrap(42, &payload).unwrap();
        stale.version += 1;
        let mut file = CHECKPOINT_MAGIC.to_vec();
        file.extend_from_slice(&stale.encode().unwrap());
        assert!(matches!(
            decode_checkpoint::<Record>(&file),
            Err(WireError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn framing_round_trips_and_detects_truncation() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"alpha").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, b"omega").unwrap();

        let mut reader = stream.as_slice();
        assert_eq!(
            read_frame(&mut reader).unwrap().as_deref(),
            Some(&b"alpha"[..])
        );
        assert_eq!(read_frame(&mut reader).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(
            read_frame(&mut reader).unwrap().as_deref(),
            Some(&b"omega"[..])
        );
        assert_eq!(read_frame(&mut reader).unwrap(), None, "clean EOF");

        // Truncated payload.
        let mut truncated = &stream[..6];
        let err = read_frame(&mut truncated).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Truncated header.
        let mut truncated = &stream[..2];
        let err = read_frame(&mut truncated).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn journal_round_trips_records_in_order() {
        let mut log = Vec::new();
        {
            let mut writer = JournalWriter::new(&mut log, 9);
            for i in 0..5u64 {
                writer
                    .append(&Record {
                        id: i,
                        score: i as f64 * 0.25,
                        tags: vec![i as u32],
                        label: None,
                        flag: i % 2 == 0,
                    })
                    .unwrap();
            }
        }
        let mut reader = JournalReader::new(log.as_slice(), 9);
        let mut ids = Vec::new();
        while let Some(r) = reader.next::<Record>().unwrap() {
            ids.push(r.id);
        }
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(!reader.torn_tail());
        assert_eq!(reader.consumed(), log.len() as u64);
    }

    #[test]
    fn group_commit_buffers_until_the_batch_boundary() {
        let mut log = Vec::new();
        {
            let mut writer = JournalWriter::with_policy(&mut log, 9, SyncPolicy::Batch(3));
            writer.append(&1u64).unwrap();
            writer.append(&2u64).unwrap();
            assert_eq!(writer.pending(), 2);
            assert!(writer.get_mut().is_empty(), "nothing flushed mid-batch");
            writer.append(&3u64).unwrap();
            assert_eq!(writer.pending(), 0, "third append completed the batch");
            assert!(!writer.get_mut().is_empty());
            let flushed = writer.get_mut().len();
            writer.append(&4u64).unwrap();
            assert_eq!(
                writer.get_mut().len(),
                flushed,
                "fourth append buffers again"
            );
            // Drop flushes the partial batch best-effort.
        }
        let mut reader = JournalReader::new(log.as_slice(), 9);
        let mut seen = Vec::new();
        while let Some(r) = reader.next::<u64>().unwrap() {
            seen.push(r);
        }
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert!(!reader.torn_tail());
    }

    #[test]
    fn sync_policies_produce_byte_identical_logs() {
        // The reference stream: one hand-framed envelope per record,
        // exactly what the pre-group-commit writer produced.
        let records: Vec<u64> = (0..10).collect();
        let mut reference = Vec::new();
        for r in &records {
            let envelope = SummaryEnvelope::wrap(5, r).unwrap();
            write_frame(&mut reference, &envelope.encode().unwrap()).unwrap();
        }
        for policy in [
            SyncPolicy::Always,
            SyncPolicy::Batch(1),
            SyncPolicy::Batch(3),
            SyncPolicy::Batch(64),
        ] {
            let mut log = Vec::new();
            {
                let mut writer = JournalWriter::with_policy(&mut log, 5, policy);
                for r in &records {
                    writer.append(r).unwrap();
                }
                writer.sync().unwrap();
            }
            assert_eq!(log, reference, "{policy:?} changed the bytes on disk");
        }
    }

    #[test]
    fn torn_tails_at_every_record_boundary_replay_the_intact_prefix() {
        // A group-committed log, flushed in full; then simulate a
        // crash at every possible boundary (clean cut at a record
        // edge, and a few torn cuts inside the following frame) and
        // require the reader to hand back exactly the intact prefix.
        let records: Vec<u64> = (100..107).collect();
        let mut log = Vec::new();
        let mut boundaries = vec![0u64];
        {
            let mut writer = JournalWriter::with_policy(&mut log, 8, SyncPolicy::Batch(3));
            for r in &records {
                writer.append(r).unwrap();
                writer.sync().unwrap();
                boundaries.push(writer.get_mut().len() as u64);
            }
        }
        for (i, &boundary) in boundaries.iter().enumerate() {
            let next = boundaries.get(i + 1).copied().unwrap_or(boundary);
            // Clean cut at the boundary, then torn cuts within the
            // next frame (header bytes and payload bytes).
            let mut cuts = vec![boundary];
            for torn in [1, 3, 5] {
                if boundary + torn < next {
                    cuts.push(boundary + torn);
                }
            }
            for cut in cuts {
                let truncated = &log[..cut as usize];
                let mut reader = JournalReader::new(truncated, 8);
                let mut seen = Vec::new();
                while let Some(r) = reader.next::<u64>().unwrap() {
                    seen.push(r);
                }
                assert_eq!(seen, records[..i], "cut at {cut} changed the prefix");
                assert_eq!(reader.consumed(), boundary, "cut at {cut}");
                assert_eq!(reader.torn_tail(), cut != boundary, "cut at {cut}");
            }
        }
    }

    #[test]
    fn journal_reader_stops_cleanly_at_a_torn_tail() {
        let mut log = Vec::new();
        {
            let mut writer = JournalWriter::new(&mut log, 4);
            writer.append(&1u64).unwrap();
            writer.append(&2u64).unwrap();
        }
        let intact = log.len();
        JournalWriter::new(&mut log, 4).append(&3u64).unwrap();
        // Crash mid-append: the last frame is truncated.
        log.truncate(intact + 7);

        let mut reader = JournalReader::new(log.as_slice(), 4);
        assert_eq!(reader.next::<u64>().unwrap(), Some(1));
        assert_eq!(reader.next::<u64>().unwrap(), Some(2));
        assert_eq!(reader.next::<u64>().unwrap(), None, "torn tail ends it");
        assert!(reader.torn_tail());
        assert_eq!(
            reader.consumed(),
            intact as u64,
            "consumed points at the end of the intact prefix"
        );
        // The reader stays ended.
        assert_eq!(reader.next::<u64>().unwrap(), None);
    }

    #[test]
    fn journal_reader_counts_records_and_bytes_in_step() {
        let mut log = Vec::new();
        {
            let mut writer = JournalWriter::new(&mut log, 6);
            for i in 0..4u64 {
                writer.append(&i).unwrap();
            }
        }
        let intact = log.len();
        JournalWriter::new(&mut log, 6).append(&99u64).unwrap();
        log.truncate(intact + 5); // torn fifth record

        let mut reader = JournalReader::new(log.as_slice(), 6);
        assert_eq!(reader.records(), 0);
        let mut expected = 0u64;
        while let Some(r) = reader.next::<u64>().unwrap() {
            assert_eq!(r, expected);
            expected += 1;
            assert_eq!(reader.records(), expected, "counter tracks each record");
        }
        assert_eq!(reader.records(), 4, "the torn record is not counted");
        assert_eq!(reader.consumed(), intact as u64);
        assert!(reader.torn_tail());
    }

    #[test]
    fn re_seeded_writer_starts_a_new_generation() {
        // The compaction shape: records under the old seed, then a
        // truncate + set_seed. The new log replays only under the new
        // seed; a reader still using the old seed hits the typed
        // mismatch (which is exactly how a stale pre-truncation
        // journal is fenced off after a crash).
        let mut log = Vec::new();
        let mut writer = JournalWriter::new(&mut log, 10);
        writer.append(&1u64).unwrap();
        writer.get_mut().clear(); // "truncate" the Vec-backed log
        writer.set_seed(11);
        writer.append(&2u64).unwrap();
        drop(writer);

        let mut reader = JournalReader::new(log.as_slice(), 11);
        assert_eq!(reader.next::<u64>().unwrap(), Some(2));
        assert_eq!(reader.next::<u64>().unwrap(), None);
        assert!(!reader.torn_tail());

        let mut stale = JournalReader::new(log.as_slice(), 10);
        assert!(matches!(
            stale.next::<u64>(),
            Err(JournalError::SeedMismatch {
                expected: 10,
                found: 11
            })
        ));
    }

    #[test]
    fn journal_reader_rejects_foreign_and_stale_records() {
        // Wrong seed: a hard error, not a silent skip.
        let mut log = Vec::new();
        JournalWriter::new(&mut log, 1).append(&7u64).unwrap();
        let mut reader = JournalReader::new(log.as_slice(), 2);
        assert!(matches!(
            reader.next::<u64>(),
            Err(JournalError::SeedMismatch {
                expected: 2,
                found: 1
            })
        ));

        // Wrong protocol version: gated before the payload decodes.
        let mut envelope = SummaryEnvelope::wrap(3, &7u64).unwrap();
        envelope.version += 1;
        let mut log = Vec::new();
        write_frame(&mut log, &envelope.encode().unwrap()).unwrap();
        let mut reader = JournalReader::new(log.as_slice(), 3);
        assert!(matches!(
            reader.next::<u64>(),
            Err(JournalError::Wire(WireError::VersionMismatch { .. }))
        ));
    }
}
